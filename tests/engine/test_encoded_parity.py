"""Property-based parity: encoded-chunked joins are bit-identical to scalar.

The determinism contract of the dictionary-encoded kernels (DESIGN.md §13)
says that for any lake, any seed, any chunk size and either schema
matcher, a run through ``enable_dict_keys=True`` + chunked out-of-core
execution returns exactly what the legacy scalar in-core path returns —
same rows, same row order, same dedup representatives, same ranked paths
and scores.  This suite drives that claim over hypothesis-drawn lakes and
join tables, including spill-forcing memory budgets.
"""

from functools import lru_cache

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import AutoFeat, AutoFeatConfig
from repro.dataframe import Column, DType, JoinIndex, Table, dedup_by_key
from repro.datasets import make_classification, split_into_lake
from repro.datasets.splitter import SplitPlan
from repro.discovery import ComaMatcher, DistributionMatcher
from repro.engine import chunked_left_join
from repro.graph import DatasetRelationGraph

MATCHERS = {
    "coma": lambda: ComaMatcher(),
    "distribution": lambda: DistributionMatcher(),
}


@lru_cache(maxsize=16)
def _lake(n_satellites: int, max_depth: int, seed: int):
    """Small deterministic snowflake lake (cached across examples)."""
    flat = make_classification(
        n_rows=240,
        n_informative=5,
        n_redundant=2,
        n_noise=3,
        class_sep=1.6,
        seed=seed,
    )
    plan = SplitPlan(
        name=f"enclake{n_satellites}d{max_depth}s{seed}",
        n_satellites=n_satellites,
        n_base_features=2,
        max_depth=max_depth,
        match_rate_range=(0.75, 1.0),
        seed=seed,
    )
    bundle = split_into_lake(flat, plan)
    return bundle, bundle.benchmark_drg()


@lru_cache(maxsize=8)
def _matched_drg(matcher_name: str, seed: int):
    """A lake whose DRG edges come from a real schema matcher."""
    bundle, _ = _lake(3, 2, seed)
    tables = [bundle.base_table] + [
        t for t in bundle.tables if t.name != bundle.base_name
    ]
    matcher = MATCHERS[matcher_name]()
    return bundle, DatasetRelationGraph.from_discovery(tables, matcher, threshold=0.55)


def discovery_fingerprint(discovery):
    """Everything order- or value-sensitive in a DiscoveryResult."""
    return {
        "ranked": [
            (
                r.path.describe(),
                r.score,
                r.selected_features,
                r.relevance_scores,
                r.redundancy_scores,
                r.completeness,
                r.relevant_names,
            )
            for r in discovery.ranked_paths
        ],
        "explored": discovery.n_paths_explored,
        "pruned_quality": discovery.n_paths_pruned_quality,
        "pruned_similarity": discovery.n_joins_pruned_similarity,
        "empty_contribution": discovery.n_hops_empty_contribution,
    }


def table_fingerprint(table: Table):
    """Bit-exact rendering of a table: schema, row order, values, masks."""
    out = []
    for name in table.column_names:
        column = table.column(name)
        values = column.values
        if column.dtype is DType.STRING:
            payload = tuple(None if m else v for v, m in zip(values, column.mask))
        else:
            payload = tuple(
                None if m else v for v, m in zip(values.tolist(), column.mask)
            )
        out.append((name, column.dtype.name, payload))
    return tuple(out)


def _discover(bundle, drg, *, config_seed, encoded, chunk_rows=None, budget=None):
    config = AutoFeatConfig(
        sample_size=120,
        seed=config_seed,
        enable_dict_keys=encoded,
        chunk_rows=chunk_rows,
        memory_budget_bytes=budget,
        enable_tracing=False,
    )
    return AutoFeat(drg, config).discover(bundle.base_name, bundle.label_column)


# -- kernel-level parity -----------------------------------------------------

_key_columns = st.sampled_from(["int", "float", "str", "bool"])


def _column(kind: str, n: int, rng: np.random.Generator) -> Column:
    mask = rng.random(n) < 0.2
    if kind == "int":
        return Column(rng.integers(-4, 12, n), dtype=DType.INT, mask=mask)
    if kind == "float":
        values = rng.integers(-4, 12, n).astype(float) + rng.choice([0.0, 0.25], n)
        return Column(values, dtype=DType.FLOAT, mask=mask)
    if kind == "bool":
        return Column(rng.random(n) < 0.5, dtype=DType.BOOL, mask=mask)
    values = np.array([f"k{v}" for v in rng.integers(-4, 12, n)], dtype=object)
    return Column(values, dtype=DType.STRING, mask=mask)


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(
    left_kind=_key_columns,
    right_kind=_key_columns,
    n_left=st.integers(min_value=0, max_value=120),
    n_right=st.integers(min_value=0, max_value=60),
    seed=st.integers(min_value=0, max_value=2**16),
    chunk_rows=st.integers(min_value=1, max_value=48),
)
def test_join_kernels_bit_identical(
    left_kind, right_kind, n_left, n_right, seed, chunk_rows
):
    rng = np.random.default_rng(seed)
    left = Table(
        {"k": _column(left_kind, n_left, rng), "x": _column("float", n_left, rng)},
        name="L",
    )
    right = Table(
        {"k": _column(right_kind, n_right, rng), "y": _column("int", n_right, rng)},
        name="R",
    )
    scalar_index = JoinIndex.build(right, "k", seed=seed, use_dict_keys=False)
    encoded_index = JoinIndex.build(right, "k", seed=seed, use_dict_keys=True)
    # Dedup representatives: same surviving rows in the same order.
    assert table_fingerprint(scalar_index.build_table) == table_fingerprint(
        encoded_index.build_table
    )
    assert scalar_index.n_keys == encoded_index.n_keys
    # Whole-table scalar join vs encoded chunked join, spill forced.
    expect = scalar_index.left_join(left, "k")
    got = chunked_left_join(
        encoded_index,
        left,
        "k",
        chunk_rows=chunk_rows,
        memory_budget_bytes=256,
    )
    assert table_fingerprint(expect) == table_fingerprint(got)
    # dedup_by_key fast path agrees with the scalar reference.
    assert table_fingerprint(
        dedup_by_key(right, "k", seed=seed, use_dict_keys=True)
    ) == table_fingerprint(dedup_by_key(right, "k", seed=seed, use_dict_keys=False))


# -- end-to-end discovery parity --------------------------------------------


@settings(
    max_examples=6,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(
    lake=st.tuples(
        st.integers(min_value=3, max_value=5),
        st.integers(min_value=1, max_value=3),
        st.integers(min_value=0, max_value=3),
    ),
    config_seed=st.integers(min_value=0, max_value=5),
    chunk_rows=st.sampled_from([16, 50, 97]),
)
def test_discover_parity_encoded_chunked_vs_scalar(lake, config_seed, chunk_rows):
    bundle, drg = _lake(*lake)
    scalar = _discover(bundle, drg, config_seed=config_seed, encoded=False)
    encoded = _discover(
        bundle,
        drg,
        config_seed=config_seed,
        encoded=True,
        chunk_rows=chunk_rows,
        budget=8192,  # small enough to spill on every realistic hop
    )
    assert discovery_fingerprint(scalar) == discovery_fingerprint(encoded)


@settings(
    max_examples=4,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(
    matcher_name=st.sampled_from(sorted(MATCHERS)),
    seed=st.integers(min_value=0, max_value=2),
    chunk_rows=st.sampled_from([32, 80]),
)
def test_discover_parity_with_real_matchers(matcher_name, seed, chunk_rows):
    """Matcher-discovered DRGs (spurious edges included) stay bit-identical."""
    bundle, drg = _matched_drg(matcher_name, seed)
    scalar = _discover(bundle, drg, config_seed=seed, encoded=False)
    encoded = _discover(
        bundle,
        drg,
        config_seed=seed,
        encoded=True,
        chunk_rows=chunk_rows,
        budget=8192,
    )
    assert discovery_fingerprint(scalar) == discovery_fingerprint(encoded)
