"""Cooperative deadline enforcement inside hop execution.

Regression suite for the deadline bugfixes: before this, a slow hop was
only caught *after* it finished (the post-hoc elapsed check in
``JoinEngine.apply_hop``), so one runaway join could blow through both
the per-hop timeout and the run-level anytime budget.  Chunked execution
now checks both deadlines between partitions and aborts mid-hop.
"""

import time

import numpy as np
import pytest

from repro.dataframe import JoinIndex
from repro.engine import JoinEngine, chunked_left_join
from repro.errors import HopBudgetExceeded, RunBudgetExceeded
from repro.graph import JoinPath

from tests.engine.test_chunked import chunky_lake, make_pair


class SlowIndex:
    """JoinIndex wrapper that sleeps on every probe — the injected slow hop."""

    def __init__(self, index: JoinIndex, per_probe_seconds: float):
        self._index = index
        self._per_probe_seconds = per_probe_seconds
        self.probes = 0

    def left_join(self, left, left_on):
        self.probes += 1
        time.sleep(self._per_probe_seconds)
        return self._index.left_join(left, left_on)


class TestChunkedCooperativeDeadlines:
    def _slow_setup(self, n_left=500, per_probe=0.02):
        left, right = make_pair(n_left=n_left)
        index = SlowIndex(JoinIndex.build(right, "k", seed=0), per_probe)
        return left, index

    def test_hop_deadline_aborts_between_partitions(self):
        left, index = self._slow_setup()
        with pytest.raises(HopBudgetExceeded, match="partitions"):
            chunked_left_join(
                index,
                left,
                "k",
                chunk_rows=50,
                hop_deadline=time.monotonic() + 0.05,
            )
        # Cooperative abort: the hop stopped mid-join, well short of the
        # 10 partitions a 500-row probe at chunk_rows=50 implies.
        assert index.probes < 10

    def test_run_deadline_aborts_between_partitions(self):
        left, index = self._slow_setup()
        with pytest.raises(RunBudgetExceeded, match="run budget expired"):
            chunked_left_join(
                index,
                left,
                "k",
                chunk_rows=50,
                run_deadline=time.monotonic() + 0.05,
            )
        assert index.probes < 10

    def test_run_deadline_checked_before_hop_deadline(self):
        # Both expired: anytime expiry wins, so graceful termination is
        # never misrecorded as a hop failure.
        left, index = self._slow_setup()
        past = time.monotonic() - 1.0
        with pytest.raises(RunBudgetExceeded):
            chunked_left_join(
                index,
                left,
                "k",
                chunk_rows=50,
                hop_deadline=past,
                run_deadline=past,
            )

    def test_deadline_context_lands_in_message(self):
        left, index = self._slow_setup()
        with pytest.raises(RunBudgetExceeded, match="base->sat"):
            chunked_left_join(
                index,
                left,
                "k",
                chunk_rows=50,
                run_deadline=time.monotonic() - 1.0,
                deadline_context="base->sat",
            )

    def test_no_deadlines_no_aborts(self):
        left, right = make_pair(n_left=200)
        index = JoinIndex.build(right, "k", seed=0)
        out = chunked_left_join(index, left, "k", chunk_rows=50)
        assert out.n_rows == 200

    def test_small_table_skips_checks_entirely(self):
        # One-shot path: no partitions, so no cooperative checkpoints —
        # the post-hoc engine check still covers it.
        left, right = make_pair(n_left=10)
        index = JoinIndex.build(right, "k", seed=0)
        out = chunked_left_join(
            index,
            left,
            "k",
            chunk_rows=100,
            run_deadline=time.monotonic() - 1.0,
        )
        assert out.n_rows == 10


class TestEngineRunDeadline:
    def test_apply_hop_rejects_expired_run_deadline(self):
        drg = chunky_lake()
        engine = JoinEngine(drg, run_deadline=time.monotonic() - 1.0)
        edge = drg.best_join_options("base", "a")[0]
        with pytest.raises(RunBudgetExceeded):
            engine.apply_hop(drg.table("base"), edge, "base")

    def test_apply_hop_run_deadline_not_a_recorded_failure(self):
        # RunBudgetExceeded is not a FaultError: the fault machinery must
        # not convert graceful expiry into a failure-report record.
        from repro.errors import FaultError

        assert not issubclass(RunBudgetExceeded, FaultError)

    def test_worker_view_inherits_run_deadline(self):
        deadline = time.monotonic() + 60.0
        engine = JoinEngine(chunky_lake(), run_deadline=deadline)
        assert engine.worker_view().run_deadline == deadline

    def test_materialize_path_respects_run_deadline(self):
        drg = chunky_lake()
        engine = JoinEngine(drg, run_deadline=time.monotonic() - 1.0)
        path = JoinPath("base").extend(drg.best_join_options("base", "a")[0])
        with pytest.raises(RunBudgetExceeded):
            engine.materialize_path(path, drg.table("base"))

    def test_chunked_hop_through_engine_aborts_early(self, monkeypatch):
        drg = chunky_lake(n=600)
        engine = JoinEngine(
            drg, chunk_rows=50, run_deadline=time.monotonic() + 0.05
        )
        original = JoinIndex.left_join

        def slow_left_join(self, left, left_on):
            time.sleep(0.02)
            return original(self, left, left_on)

        monkeypatch.setattr(JoinIndex, "left_join", slow_left_join)
        edge = drg.best_join_options("base", "a")[0]
        with pytest.raises(RunBudgetExceeded):
            engine.apply_hop(drg.table("base"), edge, "base")
        assert engine.snapshot().chunks_executed < 12
