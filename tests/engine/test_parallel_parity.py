"""Property-based parity: parallel discovery is bit-identical to serial.

The determinism contract of :mod:`repro.engine.parallel` (DESIGN.md §11)
says that for any lake, any seed and any backend, ``discover`` /
``train_top_k`` return exactly what the serial loop returns — same ranked
paths, same scores, same selected features, same failure reports.  This
suite drives that claim over hypothesis-drawn lake topologies and seeds
for all three backends, including runs under fault injection.
"""

from functools import lru_cache

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import AutoFeat, AutoFeatConfig
from repro.datasets import make_classification, split_into_lake
from repro.datasets.splitter import SplitPlan
from repro.engine import FaultInjector

BACKENDS = ("serial", "threads", "processes")


@lru_cache(maxsize=16)
def _lake(n_satellites: int, max_depth: int, seed: int):
    """Small deterministic snowflake lake (cached across examples)."""
    flat = make_classification(
        n_rows=240,
        n_informative=5,
        n_redundant=2,
        n_noise=3,
        class_sep=1.6,
        seed=seed,
    )
    plan = SplitPlan(
        name=f"lake{n_satellites}d{max_depth}s{seed}",
        n_satellites=n_satellites,
        n_base_features=2,
        max_depth=max_depth,
        match_rate_range=(0.75, 1.0),
        seed=seed,
    )
    bundle = split_into_lake(flat, plan)
    return bundle, bundle.benchmark_drg()


def discovery_fingerprint(discovery):
    """Everything order- or value-sensitive in a DiscoveryResult."""
    return {
        "ranked": [
            (
                r.path.describe(),
                r.score,
                r.selected_features,
                r.relevance_scores,
                r.redundancy_scores,
                r.completeness,
                r.relevant_names,
            )
            for r in discovery.ranked_paths
        ],
        "explored": discovery.n_paths_explored,
        "pruned_quality": discovery.n_paths_pruned_quality,
        "pruned_similarity": discovery.n_joins_pruned_similarity,
        "empty_contribution": discovery.n_hops_empty_contribution,
        "failures": [
            (f.stage, f.error_kind, f.message, f.base_table, f.path, f.edge, f.retries)
            for f in discovery.failure_report.records
        ],
    }


def _discover(drg, bundle, backend, *, config_seed=0, injector=None, **overrides):
    config = AutoFeatConfig(
        sample_size=120,
        seed=config_seed,
        parallel_backend=backend,
        max_workers=2,
        **overrides,
    )
    fault_injector = None
    if injector is not None:
        fault_injector = FaultInjector(**injector)
    autofeat = AutoFeat(drg, config, fault_injector=fault_injector)
    return autofeat.discover(bundle.base_name, bundle.label_column)


lakes = st.tuples(
    st.integers(min_value=3, max_value=6),  # n_satellites
    st.integers(min_value=1, max_value=3),  # max_depth
    st.integers(min_value=0, max_value=2),  # lake seed
)


@settings(
    max_examples=6,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(
    lake=lakes,
    config_seed=st.integers(min_value=0, max_value=2),
    traversal=st.sampled_from(["bfs", "dfs"]),
)
def test_backends_bit_identical_on_random_lakes(lake, config_seed, traversal):
    bundle, drg = _lake(*lake)
    results = {
        backend: discovery_fingerprint(
            _discover(
                drg, bundle, backend, config_seed=config_seed, traversal=traversal
            )
        )
        for backend in BACKENDS
    }
    assert results["threads"] == results["serial"]
    assert results["processes"] == results["serial"]


@settings(
    max_examples=4,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(
    lake=lakes,
    policy=st.sampled_from(["skip_and_record", "retry"]),
    fault_seed=st.integers(min_value=0, max_value=3),
    recover_after=st.integers(min_value=0, max_value=1),
)
def test_backends_bit_identical_under_fault_injection(
    lake, policy, fault_seed, recover_after
):
    bundle, drg = _lake(*lake)
    injector = {
        "failure_probability": 0.2,
        "timeout_probability": 0.1,
        "seed": fault_seed,
        "recover_after": recover_after,
    }
    results = {
        backend: discovery_fingerprint(
            _discover(
                drg,
                bundle,
                backend,
                injector=injector,
                failure_policy=policy,
                max_retries=2,
            )
        )
        for backend in BACKENDS
    }
    assert results["threads"] == results["serial"]
    assert results["processes"] == results["serial"]


class TestEngineStatsParity:
    """Shared-cache backends must reproduce serial counters exactly."""

    def test_threads_engine_stats_exact(self):
        bundle, drg = _lake(5, 3, 0)
        serial = _discover(drg, bundle, "serial")
        threads = _discover(drg, bundle, "threads")
        assert threads.engine_stats == serial.engine_stats

    def test_processes_join_work_exact_cache_counters_per_worker(self):
        bundle, drg = _lake(5, 3, 0)
        serial = _discover(drg, bundle, "serial")
        procs = _discover(drg, bundle, "processes")
        # Join work is invariant; cache hit/miss split reflects the
        # per-worker caches of the processes backend (documented caveat).
        assert procs.engine_stats.hops_executed == serial.engine_stats.hops_executed
        assert procs.engine_stats.rows_probed == serial.engine_stats.rows_probed
        assert (
            procs.engine_stats.index_builds + procs.engine_stats.cache_hits
            == serial.engine_stats.index_builds + serial.engine_stats.cache_hits
        )

    def test_selection_stats_identical_across_backends(self):
        bundle, drg = _lake(4, 2, 1)
        stats = [
            _discover(drg, bundle, backend).selection_stats for backend in BACKENDS
        ]
        assert stats[0] == stats[1] == stats[2]


class TestAugmentParity:
    """train_top_k merges trained paths deterministically too."""

    def test_full_pipeline_identical_across_backends(self):
        bundle, drg = _lake(5, 2, 2)
        outputs = {}
        for backend in BACKENDS:
            config = AutoFeatConfig(
                sample_size=120,
                seed=0,
                top_k=3,
                parallel_backend=backend,
                max_workers=2,
            )
            result = AutoFeat(drg, config).augment(
                bundle.base_name, bundle.label_column, model_name="random_forest"
            )
            outputs[backend] = {
                "trained": [
                    (t.ranked.path.describe(), t.accuracy, t.n_features_used)
                    for t in result.trained
                ],
                "best": result.best.ranked.path.describe(),
                "best_accuracy": result.best.accuracy,
                "columns": result.augmented_table.column_names,
                "failures": result.failure_report.records,
            }
        assert outputs["threads"] == outputs["serial"]
        assert outputs["processes"] == outputs["serial"]

    def test_serial_backend_of_executor_matches_default_loop(self):
        # The PathExecutor's own "serial" backend (inline execution through
        # the work-unit machinery) is the uniformity baseline: it must be
        # indistinguishable from the classic loop.  ``discover`` routes
        # backend="serial" to the classic loop, so drive the wave-based
        # implementation directly.
        bundle, drg = _lake(4, 2, 0)
        config = AutoFeatConfig(sample_size=120, seed=0, parallel_backend="serial")
        autofeat = AutoFeat(drg, config)
        classic = autofeat._discover_serial(bundle.base_name, bundle.label_column)
        waved = autofeat._discover_parallel(bundle.base_name, bundle.label_column)
        assert discovery_fingerprint(waved) == discovery_fingerprint(classic)
        assert waved.engine_stats == classic.engine_stats
        assert waved.selection_stats == classic.selection_stats
