"""Build/probe join kernels: round-trips against the one-shot wrappers."""

import numpy as np
import pytest

from repro.dataframe import JoinIndex, Table, dedup_by_key, inner_join, left_join
from repro.errors import JoinError


@pytest.fixture
def left():
    return Table({"id": [1, 2, 3, 4], "x": [0.1, 0.2, 0.3, 0.4]}, name="left")


# One build table per cardinality regime; expected values for key 1..4.
ONE_TO_ONE = Table({"id": [1, 2, 3], "v": [10.0, 20.0, 30.0]}, name="right")
ONE_TO_N = Table(
    {"id": [1, 1, 2, 2, 2, 3], "v": [1.0, 2.0, 3.0, 4.0, 5.0, 6.0]}, name="right"
)
N_TO_M = Table(
    {"id": [1, 1, 2, 3, 3, 3, None], "v": [7.0, 8.0, 9.0, 1.0, 2.0, 3.0, 4.0]},
    name="right",
)


class TestRoundTrip:
    @pytest.mark.parametrize("right", [ONE_TO_ONE, ONE_TO_N, N_TO_M])
    @pytest.mark.parametrize("seed", [0, 7])
    def test_build_probe_matches_one_shot_left_join(self, left, right, seed):
        via_wrapper = left_join(left, right, "id", "id", seed=seed)
        index = JoinIndex.build(right, "id", seed=seed)
        via_kernels = index.left_join(left, "id")
        assert via_kernels == via_wrapper

    @pytest.mark.parametrize("right", [ONE_TO_ONE, ONE_TO_N, N_TO_M])
    def test_prebuilt_index_accepted_by_wrapper(self, left, right):
        index = JoinIndex.build(right, "id", seed=3)
        assert left_join(left, right, "id", "id", seed=3, index=index) == left_join(
            left, right, "id", "id", seed=3
        )

    @pytest.mark.parametrize("right", [ONE_TO_ONE, ONE_TO_N, N_TO_M])
    def test_inner_join_round_trip(self, left, right):
        index = JoinIndex.build(right, "id", seed=0)
        assert inner_join(left, right, "id", "id", index=index) == inner_join(
            left, right, "id", "id"
        )

    def test_probe_is_repeatable(self, left):
        index = JoinIndex.build(ONE_TO_N, "id", seed=0)
        first = index.left_join(left, "id")
        second = index.left_join(left, "id")
        assert first == second

    def test_representative_choice_is_deterministic(self):
        index_a = JoinIndex.build(N_TO_M, "id", seed=5)
        index_b = JoinIndex.build(N_TO_M, "id", seed=5)
        assert index_a.build_table == index_b.build_table

    def test_build_table_is_deduped(self):
        index = JoinIndex.build(ONE_TO_N, "id")
        assert index.build_table == dedup_by_key(ONE_TO_N, "id")
        assert index.n_keys == index.build_table.n_rows == 3


class TestProbe:
    def test_gather_semantics(self, left):
        index = JoinIndex.build(ONE_TO_ONE, "id")
        gather = index.probe([3, 99, None, 1])
        build_keys = index.build_table.column("id").to_list()
        assert gather[1] == gather[2] == -1
        assert build_keys[gather[0]] == 3
        assert build_keys[gather[3]] == 1

    def test_contains(self):
        index = JoinIndex.build(ONE_TO_ONE, "id")
        assert 1 in index
        assert 1.0 in index  # numeric normalisation
        assert np.int64(1) in index
        assert 99 not in index

    def test_unmatched_probe_rows_are_null(self):
        probe = Table({"id": [1, 42]}, name="probe")
        index = JoinIndex.build(ONE_TO_ONE, "id")
        joined = index.left_join(probe, "id")
        assert joined.column("v").to_list() == [10.0, None]
        assert joined.n_rows == 2

    def test_missing_probe_column_raises(self, left):
        index = JoinIndex.build(ONE_TO_ONE, "id")
        with pytest.raises(JoinError):
            index.left_join(left, "nope")


class TestBuildErrors:
    def test_missing_key_column_raises(self):
        with pytest.raises(JoinError):
            JoinIndex.build(ONE_TO_ONE, "nope")

    def test_duplicate_key_without_dedup_raises(self):
        with pytest.raises(JoinError):
            JoinIndex.build(ONE_TO_N, "id", deduplicate=False)

    def test_no_dedup_on_unique_keys_ok(self):
        index = JoinIndex.build(ONE_TO_ONE, "id", deduplicate=False)
        assert index.n_keys == 3
        assert not index.deduplicated


class TestNumpyKeyNormalisation:
    """The `_key_of` satellite: numpy scalars must hash/digest like Python."""

    def test_numpy_keys_probe_python_index(self):
        index = JoinIndex.build(ONE_TO_ONE, "id")
        gather = index.probe([np.int64(1), np.float64(2.0), np.int64(99)])
        assert (gather[:2] >= 0).all()
        assert gather[2] == -1

    def test_python_keys_probe_numpy_built_index(self):
        right = Table(
            {"id": np.array([1, 2, 3], dtype=np.int64), "v": [1.0, 2.0, 3.0]},
            name="right",
        )
        index = JoinIndex.build(right, "id")
        assert (index.probe([1, 2.0, 3]) >= 0).all()

    def test_bool_keys_normalised(self):
        right = Table({"flag": [True, False], "v": [1.0, 2.0]}, name="right")
        index = JoinIndex.build(right, "flag")
        assert np.bool_(True) in index
        assert (index.probe([np.bool_(False), True]) >= 0).all()

    def test_representative_digest_stable_across_dtypes(self):
        """Same keys stored as int vs float vs numpy pick the same rows."""
        values = [1, 1, 2, 2, 3]
        payload = [10.0, 11.0, 20.0, 21.0, 30.0]
        as_int = Table({"id": values, "v": payload}, name="t")
        as_float = Table({"id": [float(v) for v in values], "v": payload}, name="t")
        as_np = Table(
            {"id": np.array(values, dtype=np.int64), "v": payload}, name="t"
        )
        for seed in (0, 1, 13):
            picks = {
                tuple(dedup_by_key(t, "id", seed=seed).column("v").to_list())
                for t in (as_int, as_float, as_np)
            }
            assert len(picks) == 1
