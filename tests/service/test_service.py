"""Behavioural tests for the always-on DiscoveryService.

A small deterministic chain lake (base — a — b — far) driven by a
name-keyed matcher exercises the request queue, the warm result cache,
surgical invalidation on mutation, per-request manifests, and the
service-level gauges.
"""

import threading

import pytest

from repro import AutoFeatConfig, DiscoveryService
from repro.dataframe import Table
from repro.errors import ServiceError
from repro.obs import validate_manifest
from repro.service import reachable_within


def _lake():
    n = 24
    base = Table(
        {
            "id": list(range(n)),
            "label": [i % 2 for i in range(n)],
            "bx": [float(i) for i in range(n)],
        },
        name="base",
    )
    a = Table(
        {
            "id": list(range(n)),
            "link": [i // 2 for i in range(n)],
            "af": [float(i * 3 % 7) for i in range(n)],
        },
        name="a",
    )
    b = Table(
        {
            "link": list(range(12)),
            "leaf": [i % 5 for i in range(12)],
            "bf": [float(i * i % 11) for i in range(12)],
        },
        name="b",
    )
    far = Table(
        {
            "leaf": list(range(5)),
            "ff": [float(i + 1) for i in range(5)],
        },
        name="far",
    )
    return [base, a, b, far]


def chain_matcher(t1, t2):
    """Deterministic chain edges: base—a, a—b, b—far."""
    pair = {t1.name, t2.name}
    if pair == {"base", "a"}:
        yield "id", "id", 0.9
    elif pair == {"a", "b"}:
        yield "link", "link", 0.9
    elif pair == {"b", "far"}:
        yield "leaf", "leaf", 0.9


@pytest.fixture
def config():
    return AutoFeatConfig(top_k=1, max_path_length=2, sample_size=24, seed=11)


@pytest.fixture
def service(config):
    svc = DiscoveryService(
        _lake(), matcher=chain_matcher, config=config, n_workers=2
    )
    yield svc
    svc.close()


class TestRequests:
    def test_discover_cold_then_warm(self, service):
        first = service.discover("base", "label")
        assert not first.cache_hit
        assert first.kind == "discover"
        assert first.snapshot_version == 0
        second = service.discover("base", "label")
        assert second.cache_hit
        assert second.result is first.result

    def test_use_cache_false_recomputes(self, service):
        first = service.discover("base", "label")
        bypass = service.discover("base", "label", use_cache=False)
        assert not bypass.cache_hit
        assert bypass.result is not first.result

    def test_concurrent_requests_agree(self, service):
        futures = [
            service.submit("discover", "base", "label") for _ in range(6)
        ]
        responses = [f.result(timeout=120) for f in futures]
        described = {
            tuple(
                (r.path.describe(), round(r.score, 12))
                for r in resp.result.ranked_paths
            )
            for resp in responses
        }
        assert len(described) == 1
        assert sum(not r.cache_hit for r in responses) >= 1

    def test_augment_returns_trained_result(self, service):
        response = service.augment("base", "label", timeout=300)
        assert response.kind == "augment"
        assert response.result.best is not None
        assert response.model_name == "lightgbm"

    def test_unknown_kind_rejected(self, service):
        with pytest.raises(ServiceError):
            service.submit("explain", "base", "label")

    def test_bad_worker_count_rejected(self):
        with pytest.raises(ServiceError):
            DiscoveryService(_lake(), matcher=chain_matcher, n_workers=0)

    def test_request_error_surfaces_through_future(self, service):
        with pytest.raises(Exception):
            service.discover("no_such_table", "label")

    def test_closed_service_rejects_work(self, config):
        svc = DiscoveryService(_lake(), matcher=chain_matcher, config=config)
        svc.close()
        with pytest.raises(ServiceError):
            svc.submit("discover", "base", "label")
        with pytest.raises(ServiceError):
            svc.drop_table("far")
        svc.close()  # idempotent

    def test_context_manager_closes(self, config):
        with DiscoveryService(
            _lake(), matcher=chain_matcher, config=config
        ) as svc:
            svc.discover("base", "label")
        with pytest.raises(ServiceError):
            svc.submit("discover", "base", "label")


class TestMutationInvalidation:
    def test_mutation_bumps_snapshot_version(self, service):
        assert service.version == 0
        service.drop_table("far")
        assert service.version == 1
        assert "far" not in service.drg.table_names

    def test_out_of_radius_mutation_keeps_entry_warm(self, service):
        # With a 1-hop budget base reaches only {base, a}; dropping "far"
        # affects {far, b} (the changed pair's endpoints), which misses
        # the radius entirely — the cached result must stay warm.
        short = AutoFeatConfig(
            top_k=1, max_path_length=1, sample_size=24, seed=11
        )
        warm = service.discover("base", "label", config=short)
        service.drop_table("far")
        after = service.discover("base", "label", config=short)
        assert after.cache_hit
        assert after.result is warm.result

    def test_in_radius_pair_endpoint_invalidates_conservatively(self, service):
        # Under the 2-hop budget base reaches b, and dropping "far"
        # changes the (b, far) pair — the entry is (conservatively)
        # invalidated even though no <=2-hop path used the dead edge.
        service.discover("base", "label")
        service.drop_table("far")
        after = service.discover("base", "label")
        assert not after.cache_hit

    def test_in_radius_mutation_invalidates(self, service):
        service.discover("base", "label")
        lake = {t.name: t for t in _lake()}
        service.update_table(lake["a"])  # inside the radius
        after = service.discover("base", "label")
        assert not after.cache_hit
        assert after.snapshot_version == 1

    def test_dropped_base_invalidates_its_entries(self, service):
        resp = service.discover("base", "label")
        service.drop_table("base")
        with pytest.raises(Exception):
            service.discover("base", "label")
        assert resp.result is not None  # the old handle stays usable

    def test_update_invalidates_hop_cache_for_that_table_only(self, service):
        service.discover("base", "label")
        entries_before = {key[0] for key in service.hop_cache._indexes}
        lake = {t.name: t for t in _lake()}
        service.update_table(lake["a"])
        assert all(key[0] != "a" for key in service.hop_cache._indexes)
        counters = service.hop_cache.counters()
        assert counters["invalidations"] == 1

    def test_register_does_not_touch_hop_cache(self, service):
        service.discover("base", "label")
        service.drop_table("far")
        invalidations = service.hop_cache.counters()["invalidations"]
        lake = {t.name: t for t in _lake()}
        service.register_table(lake["far"])
        assert (
            service.hop_cache.counters()["invalidations"] == invalidations
        )

    def test_mutation_report_shape(self, service):
        report = service.drop_table("far")
        assert report.kind == "drop"
        assert report.table == "far"
        assert "far" in report.affected_tables

    def test_requests_after_mutation_see_new_snapshot(self, service):
        service.drop_table("far")
        resp = service.discover("base", "label")
        assert resp.snapshot_version == 1


class TestReachability:
    def test_radius_grows_with_hops(self, service):
        drg = service.drg
        assert reachable_within(drg, "base", 0) == {"base"}
        assert reachable_within(drg, "base", 1) == {"base", "a"}
        assert reachable_within(drg, "base", 2) == {"base", "a", "b"}
        assert reachable_within(drg, "base", 3) == {"base", "a", "b", "far"}

    def test_unknown_base_is_empty(self, service):
        assert reachable_within(service.drg, "ghost", 2) == frozenset()


class TestObservability:
    def test_per_request_manifest_validates(self, service):
        resp = service.discover("base", "label")
        payload = resp.manifest.as_dict()
        validate_manifest(payload)
        assert payload["stage"] == "service.discover"
        children = {c["name"] for c in payload["timing"]["children"]}
        assert children == {"queue", "execute"}
        assert payload["metrics"]["gauges"]["service.snapshot_version"] == 0

    def test_manifest_marks_cache_hits(self, service):
        service.discover("base", "label")
        warm = service.discover("base", "label")
        metrics = warm.manifest.as_dict()["metrics"]
        assert metrics["counters"]["service.cache_hit"] == 1

    def test_service_gauges_and_counters(self, service):
        service.discover("base", "label")
        service.discover("base", "label")
        metrics = service.registry.as_dict()
        assert metrics["counters"]["service.requests_submitted"] == 2
        assert metrics["counters"]["service.result_cache_hits"] == 1
        assert metrics["counters"]["service.result_cache_misses"] == 1
        assert metrics["gauges"]["service.warm_hit_rate"] == 0.5
        assert metrics["gauges"]["service.requests_in_flight"] == 0

    def test_stats_snapshot(self, service):
        short = AutoFeatConfig(
            top_k=1, max_path_length=1, sample_size=24, seed=11
        )
        service.discover("base", "label", config=short)
        service.drop_table("far")
        stats = service.stats()
        assert stats["snapshot_version"] == 1
        assert stats["n_tables"] == 3
        assert stats["cached_results"] == 1  # far is out of the 1-hop radius
        assert set(stats["hop_cache"]) == {
            "hits", "misses", "builds", "invalidations",
            "entries_invalidated", "encode_hits", "encode_misses",
        }
        assert stats["match_index"]["mutations"] == 1


class TestConcurrencyUnderMutation:
    def test_mutations_interleaved_with_requests(self, config):
        svc = DiscoveryService(
            _lake(), matcher=chain_matcher, config=config, n_workers=3
        )
        lake = {t.name: t for t in _lake()}
        errors = []

        def requester():
            for _ in range(5):
                try:
                    svc.discover("base", "label", timeout=120)
                except Exception as exc:  # pragma: no cover - diagnostic
                    errors.append(exc)

        def mutator():
            for _ in range(3):
                try:
                    svc.update_table(lake["a"])
                    svc.drop_table("far")
                    svc.register_table(lake["far"])
                except Exception as exc:  # pragma: no cover - diagnostic
                    errors.append(exc)

        threads = [threading.Thread(target=requester) for _ in range(2)]
        threads.append(threading.Thread(target=mutator))
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        svc.close()
        assert errors == []
        # Final state equals a cold rebuild of the final lake.
        assert (
            svc.drg.edge_fingerprint()
            == svc.index.rebuild().edge_fingerprint()
        )


class TestAnytimeBudgets:
    """Per-request anytime budgets (DESIGN.md §14, service scope)."""

    def test_response_flags_clear_without_budget(self, service):
        response = service.discover("base", "label")
        assert response.budget_exhausted is False

    def test_max_hops_override_returns_partial(self, service):
        response = service.discover("base", "label", max_hops=1)
        assert response.budget_exhausted
        assert response.result.navigation.hops_executed <= 1
        assert response.result.navigation.strategy == "ucb"

    def test_budget_overrides_get_distinct_cache_keys(self, service):
        full = service.discover("base", "label")
        partial = service.discover("base", "label", max_hops=1)
        assert not full.cache_hit and not partial.cache_hit
        # Replays hit their own entries — the partial never shadows the
        # full answer and vice versa.
        assert service.discover("base", "label").cache_hit
        again = service.discover("base", "label", max_hops=1)
        assert again.cache_hit and again.budget_exhausted

    def test_hop_budget_partials_are_cacheable(self, service):
        cold = service.discover("base", "label", max_hops=1)
        warm = service.discover("base", "label", max_hops=1)
        assert not cold.cache_hit and warm.cache_hit
        assert warm.result is cold.result

    def test_wall_clock_partials_are_not_cached(self, service):
        first = service.discover("base", "label", budget_seconds=1e-9)
        second = service.discover("base", "label", budget_seconds=1e-9)
        assert first.budget_exhausted and second.budget_exhausted
        assert not first.cache_hit and not second.cache_hit

    def test_invalid_budget_rejected_at_submit(self, service):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError, match="budget_seconds"):
            service.submit("discover", "base", "label", budget_seconds=-1.0)
        with pytest.raises(ConfigError, match="max_hops"):
            service.submit("discover", "base", "label", max_hops=-2)

    def test_budget_exhausted_counter_increments(self, service):
        before = service.registry.counter(
            "service.requests_budget_exhausted"
        ).value
        service.discover("base", "label", max_hops=0)
        after = service.registry.counter(
            "service.requests_budget_exhausted"
        ).value
        assert after == before + 1

    def test_augment_budget_propagates(self, service):
        response = service.augment("base", "label", budget_seconds=1e-9)
        assert response.budget_exhausted
        assert response.result.trained == ()
