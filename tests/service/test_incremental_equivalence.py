"""Property tests: incremental maintenance equals a cold full rebuild.

The tentpole correctness contract: after *any* sequence of
register/update/drop mutations, the service's incrementally maintained
state must be bit-identical to throwing everything away and rebuilding
from scratch — same DRG (edges and weights), same ranked paths and
scores, same failure reports, same deterministic manifest fields.
Hypothesis drives random mutation sequences over a small lake for both
the COMA and Lazo matchers.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

import pytest

from repro import AutoFeat, AutoFeatConfig, DiscoveryService
from repro.dataframe import Table
from repro.graph import DatasetRelationGraph

CONFIG = AutoFeatConfig(top_k=1, max_path_length=2, sample_size=16, seed=5)
SATELLITE_POOL = ("s1", "s2", "s3", "s4")


def make_base():
    n = 16
    return Table(
        {
            "id": list(range(n)),
            "label": [i % 2 for i in range(n)],
            "bx": [float((i * 3) % 7) for i in range(n)],
        },
        name="base",
    )


def make_satellite(name, variant):
    start = variant % 5
    ids = list(range(start, start + 12))
    return Table(
        {
            "id": ids,
            f"{name}_f": [float((i * (variant + 2)) % 9) for i in ids],
        },
        name=name,
    )


#: One op: (kind, satellite index, content variant).
ops_strategy = st.lists(
    st.tuples(
        st.sampled_from(["register", "update", "drop"]),
        st.integers(min_value=0, max_value=len(SATELLITE_POOL) - 1),
        st.integers(min_value=0, max_value=6),
    ),
    min_size=1,
    max_size=6,
)


def apply_ops(service, ops):
    """Interpret the op stream against the live lake; skip invalid ops."""
    applied = []
    for kind, idx, variant in ops:
        name = SATELLITE_POOL[idx]
        present = name in service.index
        if kind == "register" and not present:
            service.register_table(make_satellite(name, variant))
        elif kind == "update" and present:
            service.update_table(make_satellite(name, variant))
        elif kind == "drop" and present:
            service.drop_table(name)
        else:
            continue
        applied.append((kind, name))
    return applied


def discovery_fingerprint(discovery):
    """Everything order- or value-sensitive in a DiscoveryResult."""
    return {
        "ranked": [
            (
                r.path.describe(),
                r.score,
                r.selected_features,
                r.relevance_scores,
                r.redundancy_scores,
                r.completeness,
                r.relevant_names,
            )
            for r in discovery.ranked_paths
        ],
        "explored": discovery.n_paths_explored,
        "pruned_quality": discovery.n_paths_pruned_quality,
        "pruned_similarity": discovery.n_joins_pruned_similarity,
        "empty_contribution": discovery.n_hops_empty_contribution,
        "failures": [
            (f.stage, f.error_kind, f.message, f.base_table, f.path, f.edge, f.retries)
            for f in discovery.failure_report.records
        ],
    }


def manifest_deterministic_fields(manifest):
    """The manifest fields a warm re-run must reproduce exactly.

    Timing, created_at and the engine's cache counters legitimately
    differ between a warm service and a cold rebuild; config, seed and
    the dataset fingerprint may not.
    """
    if manifest is None:
        return None
    payload = manifest.as_dict()
    return {
        "stage": payload["stage"],
        "seed": payload["seed"],
        "config": payload["config"],
        "dataset_fingerprint": payload["dataset_fingerprint"],
    }


def matcher_factories():
    from repro.discovery import ComaMatcher, LazoMatcher

    return [ComaMatcher, LazoMatcher]


@pytest.mark.parametrize("matcher_cls", matcher_factories())
class TestMutationEquivalence:
    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(ops=ops_strategy)
    def test_incremental_state_equals_cold_rebuild(self, matcher_cls, ops):
        lake = [make_base(), make_satellite("s1", 0), make_satellite("s2", 1)]
        service = DiscoveryService(
            lake, matcher=matcher_cls(), config=CONFIG, n_workers=1
        )
        try:
            apply_ops(service, ops)

            # (1) DRG: same table order, same edges and weights.
            cold_drg = DatasetRelationGraph.from_discovery(
                service.index.tables, matcher_cls(), threshold=0.55
            )
            assert service.drg.table_names == cold_drg.table_names
            assert service.drg.edge_fingerprint() == cold_drg.edge_fingerprint()

            # (2) Ranked paths, scores, counters and failure reports.
            warm = service.discover("base", "label", use_cache=False)
            cold = AutoFeat(cold_drg, CONFIG).discover("base", "label")
            assert discovery_fingerprint(warm.result) == discovery_fingerprint(
                cold
            )

            # (3) Deterministic manifest fields of the producing runs.
            assert manifest_deterministic_fields(
                warm.result.run_manifest
            ) == manifest_deterministic_fields(cold.run_manifest)
        finally:
            service.close()
