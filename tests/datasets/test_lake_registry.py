"""Unit tests for the lake builders and the Table II registry."""

import pytest

from repro.datasets import (
    DATASETS,
    benchmark_drg,
    build_dataset,
    datalake_drg,
    dataset_names,
    rename_for_lake,
)
from repro.errors import DatasetError


@pytest.fixture(scope="module")
def bundle():
    return build_dataset("credit")


class TestRegistry:
    def test_eight_datasets(self):
        assert len(dataset_names()) == 8
        assert dataset_names()[0] == "credit"

    def test_paper_metadata_recorded(self):
        spec = DATASETS["school"]
        assert spec.paper_rows == 1775
        assert spec.paper_joinable_tables == 16
        assert spec.paper_features == 731

    def test_unknown_dataset_raises(self):
        with pytest.raises(DatasetError):
            build_dataset("imagenet")

    def test_joinable_tables_match_table2(self, bundle):
        assert bundle.n_tables - 1 == DATASETS["credit"].paper_joinable_tables

    @pytest.mark.parametrize("name", ["credit", "eyemove", "steel"])
    def test_buildable_and_consistent(self, name):
        built = build_dataset(name)
        spec = DATASETS[name]
        assert built.base_table.n_rows == spec.rows
        assert built.n_tables - 1 == spec.n_satellites
        # region/status spurious columns may add a handful of extras.
        assert built.total_features >= spec.n_features


class TestBenchmarkSetting:
    def test_kfk_edges_only(self, bundle):
        drg = benchmark_drg(bundle)
        assert drg.n_relationships == len(bundle.constraints)
        assert all(e.weight == 1.0 for e in drg.graph.all_edges())


class TestDataLakeSetting:
    def test_edges_are_discovered_not_declared(self, bundle):
        drg = datalake_drg(bundle)
        assert drg.n_relationships > 0
        assert any(e.weight < 1.0 for e in drg.graph.all_edges())

    def test_true_edges_recoverable(self, bundle):
        drg = datalake_drg(bundle)
        # Every directly-attached satellite must be reachable from the base:
        # its true edge survives discovery as the best option for the pair.
        base_children = {
            c.table_b for c in bundle.constraints if c.table_a == bundle.base_name
        }
        reachable = set(drg.neighbors(bundle.base_name))
        assert base_children <= reachable

    def test_rename_breaks_exact_names_partially(self, bundle):
        renamed = rename_for_lake(bundle, rename_fraction=1.0)
        tables = {t.name: t for t in renamed}
        ref_columns = [
            c
            for t in tables.values()
            for c in t.column_names
            if c.endswith("_ref")
        ]
        assert ref_columns  # all parent-side keys renamed

    def test_rename_fraction_zero_keeps_names(self, bundle):
        renamed = rename_for_lake(bundle, rename_fraction=0.0)
        for original, after in zip(bundle.tables, renamed):
            assert original.column_names == after.column_names

    def test_spurious_edges_exist(self, bundle):
        drg = datalake_drg(bundle)
        truth = set()
        for c in bundle.constraints:
            truth.add(frozenset([(c.table_a, c.table_b)]))
        true_pairs = {
            frozenset((c.table_a, c.table_b)) for c in bundle.constraints
        }
        all_pairs = {
            frozenset((e.node_a, e.node_b)) for e in drg.graph.all_edges()
        }
        assert all_pairs - true_pairs, "expected at least one spurious pair"

    def test_threshold_tightening_reduces_edges(self, bundle):
        loose = datalake_drg(bundle, threshold=0.55)
        tight = datalake_drg(bundle, threshold=0.9)
        assert tight.n_relationships <= loose.n_relationships


class TestBuildAll:
    def test_all_eight_lakes_build(self):
        from repro.datasets import build_all

        bundles = build_all()
        assert set(bundles) == set(dataset_names())
        for name, bundle in bundles.items():
            spec = DATASETS[name]
            assert bundle.n_tables - 1 == spec.n_satellites, name
            assert bundle.base_table.n_rows == spec.rows, name
            assert len(bundle.constraints) == spec.n_satellites, name

    def test_school_is_star_schema(self):
        bundle = build_dataset("school")
        assert max(bundle.depths.values()) == 1

    def test_depths_within_spec(self):
        for name in ("covertype", "jannis", "miniboone"):
            bundle = build_dataset(name)
            assert max(bundle.depths.values()) <= DATASETS[name].max_depth
