"""Unit tests for the snowflake splitter."""

import pytest

from repro.core import materialize_path
from repro.datasets import LABEL_COLUMN, SplitPlan, make_classification, split_into_lake
from repro.errors import DatasetError
from repro.graph import JoinPath, bfs_levels


@pytest.fixture(scope="module")
def flat():
    return make_classification(
        400, n_informative=6, n_redundant=3, n_noise=6, class_sep=2.0, seed=0
    )


@pytest.fixture(scope="module")
def bundle(flat):
    plan = SplitPlan(
        name="demo", n_satellites=5, n_base_features=3, max_depth=2, seed=0
    )
    return split_into_lake(flat, plan)


class TestStructure:
    def test_table_count(self, bundle):
        assert bundle.n_tables == 6  # base + 5 satellites

    def test_base_has_label(self, bundle):
        assert LABEL_COLUMN in bundle.base_table

    def test_every_feature_placed_exactly_once(self, bundle, flat):
        assert set(bundle.feature_placement) == set(flat.features)
        placements = list(bundle.feature_placement.values())
        tables = {t.name: t for t in bundle.tables}
        for feature, home in bundle.feature_placement.items():
            assert feature in tables[home]

    def test_constraint_per_satellite(self, bundle):
        assert len(bundle.constraints) == 5

    def test_constraints_reference_real_columns(self, bundle):
        tables = {t.name: t for t in bundle.tables}
        for constraint in bundle.constraints:
            assert constraint.column_a in tables[constraint.table_a]
            assert constraint.column_b in tables[constraint.table_b]

    def test_depths_respect_max(self, bundle):
        assert max(bundle.depths.values()) <= 2

    def test_drg_is_connected_snowflake(self, bundle):
        drg = bundle.benchmark_drg()
        levels = bfs_levels(drg.graph, bundle.base_name)
        assert set(levels) == set(bundle.depths)
        assert levels == bundle.depths


class TestSignalPlacement:
    def test_base_gets_weakest(self, bundle, flat):
        weakest = set(flat.relevance_order[:3])
        base_features = {
            f for f, home in bundle.feature_placement.items()
            if home == bundle.base_name
        }
        assert base_features == weakest

    def test_strongest_at_max_depth(self, bundle, flat):
        strongest = flat.relevance_order[-1]
        home = bundle.feature_placement[strongest]
        assert bundle.depths[home] == 2


class TestJoinability:
    def test_chain_join_recovers_values(self, bundle):
        drg = bundle.benchmark_drg()
        # Walk to a depth-2 satellite through its parent.
        deep = [t for t, d in bundle.depths.items() if d == 2][0]
        parent = next(
            c.table_a for c in bundle.constraints if c.table_b == deep
        )
        path = JoinPath(bundle.base_name)
        for source, target in ((bundle.base_name, parent), (parent, deep)):
            path = path.extend(drg.best_join_options(source, target)[0])
        table, __ = materialize_path(drg, path, bundle.base_table)
        assert table.n_rows == bundle.base_table.n_rows
        deep_cols = [c for c in table.column_names if c.startswith(f"{deep}.")]
        # Most rows should resolve through the chain (match rates < 1 allow
        # some nulls, but never a fully-null right side).
        assert table.null_ratio(deep_cols) < 0.5

    def test_key_domains_disjoint_across_satellites(self, bundle):
        keys = {}
        for constraint in bundle.constraints:
            child = constraint.table_b
            table = next(t for t in bundle.tables if t.name == child)
            keys[child] = set(table.column(constraint.column_b).non_null_values())
        names = list(keys)
        for i, a in enumerate(names):
            for b in names[i + 1 :]:
                assert not (keys[a] & keys[b]), f"{a} and {b} share key values"


class TestMatchRates:
    def test_satellites_subsampled(self, flat):
        plan = SplitPlan(
            name="sub",
            n_satellites=3,
            n_base_features=3,
            match_rate_range=(0.5, 0.6),
            seed=1,
        )
        bundle = split_into_lake(flat, plan)
        for table in bundle.tables:
            if table.name == bundle.base_name:
                continue
            assert table.n_rows < flat.n_rows

    def test_full_match_rate_keeps_rows(self, flat):
        plan = SplitPlan(
            name="full",
            n_satellites=3,
            n_base_features=3,
            match_rate_range=(1.0, 1.0),
            seed=1,
        )
        bundle = split_into_lake(flat, plan)
        for table in bundle.tables:
            assert table.n_rows == flat.n_rows


class TestValidation:
    def test_base_swallowing_everything_raises(self, flat):
        plan = SplitPlan(name="bad", n_satellites=2, n_base_features=100)
        with pytest.raises(DatasetError):
            split_into_lake(flat, plan)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_satellites": 0, "n_base_features": 1},
            {"n_satellites": 1, "n_base_features": 0},
            {"n_satellites": 1, "n_base_features": 1, "max_depth": 0},
            {
                "n_satellites": 1,
                "n_base_features": 1,
                "match_rate_range": (0.0, 0.5),
            },
        ],
    )
    def test_invalid_plans_raise(self, kwargs):
        with pytest.raises(DatasetError):
            SplitPlan(name="x", **kwargs)

    def test_deterministic(self, flat):
        plan = SplitPlan(name="det", n_satellites=4, n_base_features=3, seed=5)
        a = split_into_lake(flat, plan)
        b = split_into_lake(flat, plan)
        assert a.feature_placement == b.feature_placement
        assert a.depths == b.depths
        for ta, tb in zip(a.tables, b.tables):
            assert ta == tb
