"""Unit tests for lake persistence (CSV directory + manifest)."""

import json

import pytest

from repro.datasets import (
    MANIFEST_NAME,
    benchmark_drg,
    build_dataset,
    load_lake,
    load_lake_tables,
    save_lake,
)
from repro.errors import DatasetError


@pytest.fixture(scope="module")
def bundle():
    return build_dataset("credit")


@pytest.fixture
def saved(bundle, tmp_path):
    return save_lake(bundle, tmp_path / "lake")


class TestSave:
    def test_writes_csv_per_table(self, bundle, saved):
        csvs = sorted(p.name for p in saved.glob("*.csv"))
        assert len(csvs) == bundle.n_tables

    def test_writes_manifest(self, saved):
        manifest = json.loads((saved / MANIFEST_NAME).read_text())
        assert manifest["base_table"] == "credit_base"
        assert manifest["label_column"] == "label"
        assert len(manifest["constraints"]) == 5


class TestLoad:
    def test_faithful_roundtrip(self, bundle, saved):
        restored = load_lake(saved)
        assert restored.base_name == bundle.base_name
        assert restored.constraints == bundle.constraints
        assert restored.depths == bundle.depths
        for original, back in zip(bundle.tables, restored.tables):
            assert original == back, original.name

    def test_restored_lake_builds_drg(self, bundle, saved):
        restored = load_lake(saved)
        drg = benchmark_drg(restored)
        assert drg.n_relationships == len(bundle.constraints)

    def test_tables_only_mode(self, bundle, saved):
        tables = load_lake_tables(saved)
        assert {t.name for t in tables} == {t.name for t in bundle.tables}

    def test_missing_manifest_raises(self, tmp_path):
        with pytest.raises(DatasetError, match="manifest"):
            load_lake(tmp_path)

    def test_corrupt_manifest_raises(self, tmp_path):
        (tmp_path / MANIFEST_NAME).write_text("{not json")
        with pytest.raises(DatasetError, match="corrupt"):
            load_lake(tmp_path)

    def test_missing_table_file_raises(self, saved):
        (saved / "credit_t00.csv").unlink()
        with pytest.raises(DatasetError, match="missing"):
            load_lake(saved)

    def test_version_check(self, saved):
        manifest = json.loads((saved / MANIFEST_NAME).read_text())
        manifest["version"] = 99
        (saved / MANIFEST_NAME).write_text(json.dumps(manifest))
        with pytest.raises(DatasetError, match="version"):
            load_lake(saved)
