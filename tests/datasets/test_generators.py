"""Unit tests for the planted-signal dataset generator."""

import numpy as np
import pytest

from repro.datasets import make_classification
from repro.errors import DatasetError
from repro.selection import spearman_relevance


class TestShapes:
    def test_feature_counts(self):
        flat = make_classification(200, n_informative=3, n_redundant=2, n_noise=4)
        assert flat.n_features == 9
        assert flat.n_rows == 200
        assert len(flat.label) == 200

    def test_feature_name_families(self):
        flat = make_classification(100, 2, 1, 1)
        assert {n.split("_")[0] for n in flat.features} == {"inf", "red", "noise"}

    def test_binary_labels(self):
        flat = make_classification(300, 2, 0, 0)
        assert set(flat.label) <= {0, 1}


class TestPlantedSignal:
    def test_informative_beats_noise(self):
        flat = make_classification(3000, 3, 0, 3, class_sep=2.0, seed=1)
        y = flat.label.astype(float)
        inf_score = spearman_relevance(flat.features["inf_00"], y)
        noise_score = spearman_relevance(flat.features["noise_00"], y)
        assert inf_score > noise_score + 0.2

    def test_relevance_order_matches_measured(self):
        flat = make_classification(5000, 4, 0, 2, class_sep=2.0, seed=2)
        y = flat.label.astype(float)
        weakest = flat.relevance_order[0]
        strongest = flat.relevance_order[-1]
        assert spearman_relevance(flat.features[strongest], y) > spearman_relevance(
            flat.features[weakest], y
        )

    def test_effect_sizes_graded(self):
        flat = make_classification(5000, 5, 0, 0, class_sep=2.0, seed=3)
        y = flat.label.astype(float)
        first = spearman_relevance(flat.features["inf_00"], y)
        last = spearman_relevance(flat.features["inf_04"], y)
        assert first > last

    def test_redundant_correlates_with_informative(self):
        flat = make_classification(2000, 2, 1, 0, seed=4)
        red = flat.features["red_00"]
        best = max(
            abs(np.corrcoef(red, flat.features[f"inf_{i:02d}"])[0, 1])
            for i in range(2)
        )
        assert best > 0.5

    def test_label_noise_keeps_accuracy_below_one(self):
        flat = make_classification(2000, 2, 0, 0, class_sep=5.0, label_noise=0.1, seed=5)
        # Even a perfect classifier on features is wrong on ~10% flipped labels.
        margin = flat.features["inf_00"] + flat.features["inf_01"]
        implied = (margin > 0).astype(int)
        assert np.mean(implied == flat.label) < 0.97


class TestCategorical:
    def test_categorical_features_are_small_ints(self):
        flat = make_classification(500, 3, 0, 0, n_categorical=2, seed=6)
        for name in ("inf_00", "inf_01"):
            assert set(np.unique(flat.features[name])) <= {0.0, 1.0, 2.0, 3.0}

    def test_categorical_keeps_signal(self):
        flat = make_classification(4000, 2, 0, 1, n_categorical=1, class_sep=2.0, seed=7)
        y = flat.label.astype(float)
        assert spearman_relevance(flat.features["inf_00"], y) > spearman_relevance(
            flat.features["noise_00"], y
        )


class TestDeterminismAndValidation:
    def test_same_seed_same_data(self):
        a = make_classification(100, 2, 1, 1, seed=9)
        b = make_classification(100, 2, 1, 1, seed=9)
        assert np.array_equal(a.label, b.label)
        for name in a.features:
            assert np.array_equal(a.features[name], b.features[name])

    def test_different_seed_differs(self):
        a = make_classification(100, 2, 0, 0, seed=1)
        b = make_classification(100, 2, 0, 0, seed=2)
        assert not np.array_equal(a.features["inf_00"], b.features["inf_00"])

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_rows": 5, "n_informative": 1, "n_redundant": 0, "n_noise": 0},
            {"n_rows": 100, "n_informative": 0, "n_redundant": 0, "n_noise": 1},
            {"n_rows": 100, "n_informative": 2, "n_redundant": -1, "n_noise": 0},
            {
                "n_rows": 100,
                "n_informative": 1,
                "n_redundant": 0,
                "n_noise": 0,
                "n_categorical": 2,
            },
        ],
    )
    def test_invalid_parameters_raise(self, kwargs):
        with pytest.raises(DatasetError):
            make_classification(**kwargs)
