"""Unit tests for the Dataset Relation Graph."""

import pytest

from repro.dataframe import Table
from repro.errors import GraphError
from repro.graph import DatasetRelationGraph, KFKConstraint


@pytest.fixture
def tables():
    a = Table({"id": [1, 2, 3], "x": [1.0, 2.0, 3.0]}, name="a")
    b = Table({"id": [1, 2, 9], "fk": [10, 20, 30], "y": [5, 6, 7]}, name="b")
    c = Table({"fk": [10, 20, 40], "z": [1, 2, 3]}, name="c")
    return [a, b, c]


@pytest.fixture
def drg(tables):
    return DatasetRelationGraph.from_constraints(
        tables,
        [
            KFKConstraint("a", "id", "b", "id"),
            KFKConstraint("b", "fk", "c", "fk"),
        ],
    )


class TestConstruction:
    def test_counts(self, drg):
        assert drg.n_tables == 3
        assert drg.n_relationships == 2

    def test_anonymous_table_raises(self, tables):
        with pytest.raises(GraphError):
            DatasetRelationGraph([Table({"x": [1]})])

    def test_duplicate_names_raise(self, tables):
        with pytest.raises(GraphError):
            DatasetRelationGraph([tables[0], tables[0]])

    def test_kfk_edges_have_weight_one(self, drg):
        assert all(e.weight == 1.0 for e in drg.graph.all_edges())

    def test_unknown_table_in_constraint_raises(self, tables):
        with pytest.raises(GraphError):
            DatasetRelationGraph.from_constraints(
                tables, [KFKConstraint("a", "id", "zzz", "id")]
            )

    def test_unknown_column_in_constraint_raises(self, tables):
        with pytest.raises(GraphError):
            DatasetRelationGraph.from_constraints(
                tables, [KFKConstraint("a", "zzz", "b", "id")]
            )


class TestDiscoveryConstruction:
    def test_matcher_driven_edges(self, tables):
        def matcher(t1, t2):
            if {t1.name, t2.name} == {"a", "b"}:
                yield "id", "id", 0.9
                yield "id", "fk", 0.6
            if {t1.name, t2.name} == {"b", "c"}:
                yield "fk", "fk", 0.8

        drg = DatasetRelationGraph.from_discovery(tables, matcher, threshold=0.55)
        assert drg.n_relationships == 3
        assert len(drg.join_options("a", "b")) == 2

    def test_threshold_filters(self, tables):
        def matcher(t1, t2):
            yield t1.column_names[0], t2.column_names[0], 0.5

        drg = DatasetRelationGraph.from_discovery(tables, matcher, threshold=0.55)
        assert drg.n_relationships == 0

    def test_invalid_threshold_raises(self, tables):
        with pytest.raises(GraphError):
            DatasetRelationGraph.from_discovery(tables, lambda a, b: [], threshold=0)


class TestQueries:
    def test_table_lookup(self, drg):
        assert drg.table("a").name == "a"

    def test_unknown_table_raises(self, drg):
        with pytest.raises(GraphError):
            drg.table("zzz")

    def test_neighbors(self, drg):
        assert drg.neighbors("b") == ["a", "c"]

    def test_join_options_oriented(self, drg):
        options = drg.join_options("b", "a")
        assert options[0].source == "b"
        assert options[0].source_column == "id"


class TestSimilarityPruning:
    def test_best_keeps_top_score(self, tables):
        def matcher(t1, t2):
            if {t1.name, t2.name} == {"a", "b"}:
                yield "id", "id", 0.9
                yield "id", "fk", 0.6

        drg = DatasetRelationGraph.from_discovery(tables, matcher, threshold=0.55)
        best = drg.best_join_options("a", "b")
        assert len(best) == 1
        assert best[0].weight == 0.9

    def test_ties_all_survive(self, tables):
        def matcher(t1, t2):
            if {t1.name, t2.name} == {"a", "b"}:
                yield "id", "id", 0.8
                yield "id", "fk", 0.8

        drg = DatasetRelationGraph.from_discovery(tables, matcher, threshold=0.55)
        assert len(drg.best_join_options("a", "b")) == 2

    def test_no_options_empty(self, drg):
        assert drg.best_join_options("a", "c") == []


class TestSimpleGraphVariant:
    def test_collapse(self, tables):
        def matcher(t1, t2):
            if {t1.name, t2.name} == {"a", "b"}:
                yield "id", "id", 0.9
                yield "id", "fk", 0.6

        drg = DatasetRelationGraph.from_discovery(tables, matcher, threshold=0.55)
        simple = drg.with_simple_graph()
        assert simple.n_relationships == 1
        assert drg.n_relationships == 2  # original untouched

    def test_tables_shared(self, drg):
        simple = drg.with_simple_graph()
        assert simple.table_names == drg.table_names
