"""Unit tests for the DRG delta API (incremental rebuilds).

The contract under test: ``apply_delta`` must produce a DRG whose edge
set *and adjacency insertion order* are identical to rebuilding from
scratch over the post-mutation lake — order matters because the
discovery BFS enumerates paths in adjacency order, so any scramble would
silently change rankings.
"""

import pytest

from repro.dataframe import Table
from repro.errors import GraphError
from repro.graph import DatasetRelationGraph, DrgDelta


def _table(name, key_vals, extra=None):
    data = {"id": list(key_vals)}
    if extra:
        data.update(extra)
    return Table(data, name=name)


@pytest.fixture
def tables():
    return [
        _table("a", [1, 2, 3], {"x": [1.0, 2.0, 3.0]}),
        _table("b", [1, 2, 9], {"y": [5, 6, 7]}),
        _table("c", [1, 9, 9], {"z": [0, 1, 2]}),
    ]


def matcher(t1, t2):
    """Deterministic toy matcher: every id/id pair scores 0.9."""
    yield "id", "id", 0.9


@pytest.fixture
def drg(tables):
    return DatasetRelationGraph.from_discovery(tables, matcher, threshold=0.55)


def adjacency_order(drg):
    """Full per-node adjacency as (partner, col_a, col_b, weight) rows."""
    out = {}
    for name in drg.table_names:
        rows = []
        for oriented in drg.graph.edges_of(name):
            rows.append(
                (oriented.target, oriented.source_column,
                 oriented.target_column, oriented.weight)
            )
        out[name] = rows
    return out


class TestApplyDelta:
    def test_add_table_matches_cold_rebuild(self, drg, tables):
        d = _table("d", [2, 3, 4])
        delta = DrgDelta(
            added=(d,),
            pair_edges={
                ("a", "d"): (("id", "id", 0.9),),
                ("b", "d"): (("id", "id", 0.9),),
                ("c", "d"): (("id", "id", 0.9),),
            },
        )
        new = drg.apply_delta(delta)
        cold = DatasetRelationGraph.from_discovery(
            tables + [d], matcher, threshold=0.55
        )
        assert new.table_names == cold.table_names
        assert new.edge_fingerprint() == cold.edge_fingerprint()
        assert adjacency_order(new) == adjacency_order(cold)

    def test_drop_table_matches_cold_rebuild(self, drg, tables):
        delta = DrgDelta(dropped=("b",))
        new = drg.apply_delta(delta)
        cold = DatasetRelationGraph.from_discovery(
            [t for t in tables if t.name != "b"], matcher, threshold=0.55
        )
        assert new.table_names == cold.table_names
        assert new.edge_fingerprint() == cold.edge_fingerprint()
        assert adjacency_order(new) == adjacency_order(cold)

    def test_update_keeps_position_and_replaces_edges(self, drg, tables):
        b2 = _table("b", [1, 2, 3], {"y": [9, 9, 9]})
        delta = DrgDelta(
            updated=(b2,),
            pair_edges={
                ("a", "b"): (("id", "id", 0.7),),
                ("b", "c"): (),
            },
        )
        new = drg.apply_delta(delta)
        cold = DatasetRelationGraph.from_discovery(
            [tables[0], b2, tables[2]],
            lambda t1, t2: (
                [("id", "id", 0.7)] if {t1.name, t2.name} == {"a", "b"}
                else [] if "b" in (t1.name, t2.name)
                else [("id", "id", 0.9)]
            ),
            threshold=0.55,
        )
        assert new.table_names == ["a", "b", "c"]
        assert new.table("b").column("y").values[0] == 9
        assert new.edge_fingerprint() == cold.edge_fingerprint()

    def test_unaffected_edges_are_shared_instances(self, drg):
        d = _table("d", [5])
        delta = DrgDelta(added=(d,), pair_edges={
            ("a", "d"): (), ("b", "d"): (), ("c", "d"): (),
        })
        new = drg.apply_delta(delta)
        old_edges = {id(e) for e in drg.graph.all_edges()}
        new_edges = {id(e) for e in new.graph.all_edges()}
        assert new_edges == old_edges  # every surviving edge is re-used

    def test_original_is_untouched(self, drg):
        before = drg.edge_fingerprint()
        drg.apply_delta(DrgDelta(dropped=("c",)))
        assert drg.edge_fingerprint() == before
        assert drg.table_names == ["a", "b", "c"]

    def test_sequence_of_deltas_matches_cold(self, drg, tables):
        d = _table("d", [1, 2])
        step1 = drg.apply_delta(DrgDelta(
            added=(d,),
            pair_edges={("a", "d"): (("id", "id", 0.8),),
                        ("b", "d"): (), ("c", "d"): ()},
        ))
        step2 = step1.apply_delta(DrgDelta(dropped=("b",)))
        cold = DatasetRelationGraph.from_discovery(
            [tables[0], tables[2], d],
            lambda t1, t2: (
                [("id", "id", 0.8)] if {t1.name, t2.name} == {"a", "d"}
                else [] if "d" in (t1.name, t2.name)
                else [("id", "id", 0.9)]
            ),
            threshold=0.55,
        )
        assert step2.table_names == cold.table_names
        assert step2.edge_fingerprint() == cold.edge_fingerprint()
        assert adjacency_order(step2) == adjacency_order(cold)


class TestDeltaValidation:
    def test_drop_unknown_raises(self, drg):
        with pytest.raises(GraphError):
            drg.apply_delta(DrgDelta(dropped=("zzz",)))

    def test_update_unknown_raises(self, drg):
        with pytest.raises(GraphError):
            drg.apply_delta(DrgDelta(updated=(_table("zzz", [1]),)))

    def test_add_duplicate_raises(self, drg):
        with pytest.raises(GraphError):
            drg.apply_delta(DrgDelta(added=(_table("a", [1]),)))

    def test_drop_and_update_overlap_raises(self, drg):
        with pytest.raises(GraphError):
            drg.apply_delta(
                DrgDelta(updated=(_table("b", [1]),), dropped=("b",))
            )

    def test_affected_tables(self):
        delta = DrgDelta(
            added=(_table("d", [1]),),
            updated=(_table("b", [1]),),
            dropped=("c",),
        )
        assert delta.affected_tables == frozenset({"b", "c", "d"})
