"""Unit tests for join-path enumeration and Equation 3."""

from math import factorial

import networkx as nx
import pytest

from repro.errors import GraphError
from repro.graph import (
    JoinPath,
    MultiGraph,
    bfs_levels,
    count_paths,
    enumerate_paths,
    join_all_path_count,
)


def chain_graph(n: int) -> MultiGraph:
    g = MultiGraph()
    for i in range(n):
        g.add_node(f"t{i}")
    for i in range(n - 1):
        g.add_edge(f"t{i}", f"t{i+1}", "k", "k", 1.0)
    return g


def star_graph(leaves: int) -> MultiGraph:
    g = MultiGraph()
    g.add_node("hub")
    for i in range(leaves):
        g.add_node(f"l{i}")
        g.add_edge("hub", f"l{i}", "k", "k", 1.0)
    return g


@pytest.fixture
def multi():
    g = MultiGraph()
    for n in ("a", "b", "c"):
        g.add_node(n)
    g.add_edge("a", "b", "x", "y", 0.9)
    g.add_edge("a", "b", "x2", "y2", 0.8)
    g.add_edge("b", "c", "k", "k", 1.0)
    return g


class TestJoinPath:
    def test_empty_path(self):
        path = JoinPath("a")
        assert path.length == 0
        assert path.terminal == "a"
        assert path.nodes == ("a",)

    def test_extend(self, multi):
        edge = multi.edges_between("a", "b")[0]
        path = JoinPath("a").extend(edge)
        assert path.length == 1
        assert path.terminal == "b"

    def test_discontinuous_raises(self, multi):
        edge = multi.edges_between("b", "c")[0]
        with pytest.raises(GraphError):
            JoinPath("a", (edge,))

    def test_cycle_raises(self, multi):
        ab = multi.edges_between("a", "b")[0]
        ba = multi.edges_between("b", "a")[0]
        with pytest.raises(GraphError):
            JoinPath("a", (ab, ba))

    def test_describe(self, multi):
        edge = multi.edges_between("a", "b")[0]
        text = JoinPath("a").extend(edge).describe()
        assert "a.x -> b.y" == text


class TestEnumeration:
    def test_chain_counts(self):
        g = chain_graph(4)
        assert count_paths(g, "t0", max_length=3) == 3

    def test_multi_edges_multiply_paths(self, multi):
        paths = enumerate_paths(multi, "a", max_length=1)
        assert len(paths) == 2  # two parallel a-b edges

    def test_two_hops_through_parallel_edges(self, multi):
        paths = enumerate_paths(multi, "a", max_length=2)
        # 2 one-hop paths + 2 two-hop continuations to c.
        assert len(paths) == 4

    def test_bfs_order_by_level(self, multi):
        lengths = [p.length for p in enumerate_paths(multi, "a", max_length=2)]
        assert lengths == sorted(lengths)

    def test_acyclic(self):
        g = chain_graph(3)
        g.add_edge("t0", "t2", "z", "z", 1.0)  # triangle
        for path in enumerate_paths(g, "t0", max_length=3):
            assert len(set(path.nodes)) == len(path.nodes)

    def test_unknown_base_raises(self, multi):
        with pytest.raises(GraphError):
            enumerate_paths(multi, "zzz")

    def test_invalid_length_raises(self, multi):
        with pytest.raises(GraphError):
            enumerate_paths(multi, "a", max_length=0)

    def test_matches_networkx_simple_paths(self):
        # Cross-check path counts against networkx on a random simple graph.
        gnx = nx.gnp_random_graph(7, 0.45, seed=4)
        g = MultiGraph()
        for node in gnx.nodes:
            g.add_node(f"n{node}")
        for u, v in gnx.edges:
            g.add_edge(f"n{u}", f"n{v}", "k", "k", 1.0)
        ours = count_paths(g, "n0", max_length=6)
        theirs = sum(
            1
            for target in gnx.nodes
            if target != 0
            for __ in nx.all_simple_paths(gnx, 0, target, cutoff=6)
        )
        assert ours == theirs


class TestBfsLevels:
    def test_chain_levels(self):
        levels = bfs_levels(chain_graph(4), "t0")
        assert levels == {"t0": 0, "t1": 1, "t2": 2, "t3": 3}

    def test_unreachable_nodes_absent(self):
        g = chain_graph(2)
        g.add_node("island")
        assert "island" not in bfs_levels(g, "t0")

    def test_unknown_base_raises(self):
        with pytest.raises(GraphError):
            bfs_levels(chain_graph(2), "zzz")


class TestJoinAllCount:
    def test_star_is_factorial(self):
        g = star_graph(5)
        assert join_all_path_count(g, "hub") == factorial(5)

    def test_chain_is_one(self):
        assert join_all_path_count(chain_graph(5), "t0") == 1

    def test_school_like_explosion(self):
        # The paper's school dataset: star schema with 15 satellites -> 15!.
        assert join_all_path_count(star_graph(15), "hub") == factorial(15)

    def test_two_level_tree(self):
        g = star_graph(3)
        g.add_node("deep")
        g.add_edge("l0", "deep", "k", "k", 1.0)
        # hub has 3 unvisited neighbours, l0 has 1 -> 3! * 1! = 6.
        assert join_all_path_count(g, "hub") == 6
