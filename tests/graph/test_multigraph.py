"""Unit tests for the weighted undirected multigraph."""

import pytest

from repro.errors import GraphError
from repro.graph import MultiGraph


@pytest.fixture
def graph():
    g = MultiGraph()
    for name in ("a", "b", "c"):
        g.add_node(name)
    g.add_edge("a", "b", "x", "y", 0.9)
    g.add_edge("a", "b", "x2", "y2", 0.7)  # parallel edge
    g.add_edge("b", "c", "k", "k", 1.0)
    return g


class TestConstruction:
    def test_counts(self, graph):
        assert graph.n_nodes == 3
        assert graph.n_edges == 3

    def test_add_node_idempotent(self, graph):
        graph.add_node("a")
        assert graph.n_nodes == 3

    def test_empty_node_name_raises(self):
        with pytest.raises(GraphError):
            MultiGraph().add_node("")

    def test_edge_to_unknown_node_raises(self, graph):
        with pytest.raises(GraphError):
            graph.add_edge("a", "zzz", "x", "y", 0.5)

    def test_self_loop_raises(self, graph):
        with pytest.raises(GraphError):
            graph.add_edge("a", "a", "x", "y", 0.5)

    def test_invalid_weight_raises(self, graph):
        with pytest.raises(GraphError):
            graph.add_edge("a", "c", "x", "y", 0.0)
        with pytest.raises(GraphError):
            graph.add_edge("a", "c", "x", "y", 1.5)

    def test_duplicate_edge_keeps_max_weight(self, graph):
        graph.add_edge("a", "b", "x", "y", 0.5)  # lower than existing 0.9
        edges = graph.edges_between("a", "b")
        weights = {(e.source_column, e.target_column): e.weight for e in edges}
        assert weights[("x", "y")] == 0.9
        graph.add_edge("a", "b", "x", "y", 0.95)
        edges = graph.edges_between("a", "b")
        weights = {(e.source_column, e.target_column): e.weight for e in edges}
        assert weights[("x", "y")] == 0.95
        assert graph.n_edges == 3

    def test_duplicate_detected_from_either_direction(self, graph):
        graph.add_edge("b", "a", "y", "x", 0.8)  # same edge, reversed
        assert graph.n_edges == 3


class TestQueries:
    def test_contains(self, graph):
        assert "a" in graph
        assert "z" not in graph

    def test_neighbors(self, graph):
        assert graph.neighbors("a") == ["b"]
        assert set(graph.neighbors("b")) == {"a", "c"}

    def test_edges_of_orientation(self, graph):
        for edge in graph.edges_of("b"):
            assert edge.source == "b"

    def test_oriented_columns_flip(self, graph):
        edge = graph.edges_between("b", "a")[0]
        assert edge.source_column in ("y", "y2")
        assert edge.target_column in ("x", "x2")

    def test_degree_counts_parallel(self, graph):
        assert graph.degree("a") == 2

    def test_edges_between_empty(self, graph):
        assert graph.edges_between("a", "c") == []

    def test_unknown_node_raises(self, graph):
        with pytest.raises(GraphError):
            graph.edges_of("zzz")

    def test_all_edges_each_once(self, graph):
        assert len(graph.all_edges()) == 3

    def test_oriented_from_non_incident_raises(self, graph):
        edge = graph.all_edges()[0]
        with pytest.raises(GraphError):
            edge.oriented_from("c" if edge.node_a != "c" and edge.node_b != "c" else "zzz")


class TestSimpleGraph:
    def test_collapses_parallel_edges(self, graph):
        simple = graph.simple_graph()
        assert simple.n_edges == 2
        assert len(simple.edges_between("a", "b")) == 1

    def test_keeps_heaviest(self, graph):
        simple = graph.simple_graph()
        edge = simple.edges_between("a", "b")[0]
        assert edge.weight == 0.9

    def test_original_untouched(self, graph):
        graph.simple_graph()
        assert graph.n_edges == 3

    def test_repr(self, graph):
        assert "nodes=3" in repr(graph)
