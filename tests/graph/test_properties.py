"""Property-based tests for the multigraph and path enumeration."""

import networkx as nx
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import MultiGraph, bfs_levels, count_paths, iter_paths_bfs


@st.composite
def random_multigraph(draw):
    """A small random multigraph plus its networkx shadow."""
    n_nodes = draw(st.integers(min_value=2, max_value=6))
    names = [f"n{i}" for i in range(n_nodes)]
    g = MultiGraph()
    shadow = nx.MultiGraph()
    for name in names:
        g.add_node(name)
        shadow.add_node(name)
    n_edges = draw(st.integers(min_value=1, max_value=10))
    for e in range(n_edges):
        a = draw(st.integers(min_value=0, max_value=n_nodes - 1))
        b = draw(st.integers(min_value=0, max_value=n_nodes - 1))
        if a == b:
            continue
        col = f"c{e}"
        g.add_edge(names[a], names[b], col, col, 1.0)
        shadow.add_edge(names[a], names[b], key=col)
    return g, shadow


@given(random_multigraph())
@settings(max_examples=60)
def test_edge_count_matches_shadow(pair):
    g, shadow = pair
    assert g.n_edges == shadow.number_of_edges()


@given(random_multigraph())
@settings(max_examples=60)
def test_neighbors_match_shadow(pair):
    g, shadow = pair
    for node in g.nodes:
        assert set(g.neighbors(node)) == set(shadow.neighbors(node))


@given(random_multigraph())
@settings(max_examples=60)
def test_bfs_levels_match_shortest_paths(pair):
    g, shadow = pair
    source = g.nodes[0]
    ours = bfs_levels(g, source)
    theirs = nx.single_source_shortest_path_length(shadow, source)
    assert ours == dict(theirs)


@given(random_multigraph(), st.integers(min_value=1, max_value=4))
@settings(max_examples=40, deadline=None)
def test_paths_are_acyclic_and_bounded(pair, max_length):
    g, __ = pair
    source = g.nodes[0]
    for path in iter_paths_bfs(g, source, max_length=max_length):
        assert 1 <= path.length <= max_length
        assert len(set(path.nodes)) == len(path.nodes)
        assert path.base == source


@given(random_multigraph())
@settings(max_examples=40, deadline=None)
def test_path_multiset_unique(pair):
    """No join path is enumerated twice (edges included in identity)."""
    g, __ = pair
    source = g.nodes[0]
    seen = set()
    for path in iter_paths_bfs(g, source, max_length=4):
        key = tuple(e.key for e in path.edges)
        assert key not in seen
        seen.add(key)


@given(random_multigraph())
@settings(max_examples=40, deadline=None)
def test_simple_graph_never_more_paths(pair):
    g, __ = pair
    source = g.nodes[0]
    assert count_paths(g.simple_graph(), source, 3) <= count_paths(g, source, 3)
