"""Cross-checks of our correlation/rank machinery against scipy.stats."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays
from scipy import stats

from repro.ml.metrics import auc_score
from repro.selection.relevance import _rankdata, pearson_relevance, spearman_relevance

vectors = arrays(
    np.float64,
    st.integers(min_value=5, max_value=80),
    elements=st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
)


@given(vectors)
@settings(max_examples=80)
def test_rankdata_matches_scipy(x):
    ours = _rankdata(x)
    theirs = stats.rankdata(x, method="average")
    assert np.allclose(ours, theirs)


def _effectively_constant(x: np.ndarray) -> bool:
    tiny = float(np.finfo(np.float64).tiny)
    return np.std(x) <= 1e-12 * max(float(np.abs(x).max()), tiny)


@given(vectors, vectors)
@settings(max_examples=60)
def test_pearson_matches_scipy(x, y):
    n = min(len(x), len(y))
    x, y = x[:n], y[:n]
    if _effectively_constant(x) or _effectively_constant(y):
        assert pearson_relevance(x, y) == 0.0
        return
    ours = pearson_relevance(x, y)
    theirs = abs(stats.pearsonr(x, y).statistic)
    assert ours == pytest.approx(theirs, abs=1e-6)


@given(vectors, vectors)
@settings(max_examples=60)
def test_spearman_matches_scipy(x, y):
    n = min(len(x), len(y))
    x, y = x[:n], y[:n]
    if len(np.unique(x)) < 2 or len(np.unique(y)) < 2:
        return
    ours = spearman_relevance(x, y)
    theirs = abs(stats.spearmanr(x, y).statistic)
    assert ours == pytest.approx(theirs, abs=1e-8)


def test_auc_matches_rank_based_reference():
    rng = np.random.default_rng(0)
    for __ in range(10):
        y = rng.integers(0, 2, 300)
        if len(np.unique(y)) < 2:
            continue
        scores = rng.normal(0, 1, 300)
        ours = auc_score(y, scores)
        # Brute-force pairwise reference.
        pos = scores[y == 1]
        neg = scores[y == 0]
        wins = sum((p > n) + 0.5 * (p == n) for p in pos for n in neg)
        reference = wins / (len(pos) * len(neg))
        assert ours == pytest.approx(reference, abs=1e-9)
