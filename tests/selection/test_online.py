"""Unit tests for the online streaming selectors."""

import numpy as np
import pytest

from repro.errors import SelectionError
from repro.selection import (
    AlphaInvestingSelector,
    FastOSFSSelector,
    partial_correlation_pvalue,
)


@pytest.fixture(scope="module")
def data():
    rng = np.random.default_rng(5)
    n = 2000
    y = rng.integers(0, 2, n).astype(float)
    strong = y + rng.normal(0, 0.3, n)
    weak = y + rng.normal(0, 2.5, n)
    duplicate = strong + rng.normal(0, 0.01, n)
    noise = rng.normal(0, 1, n)
    return {"y": y, "strong": strong, "weak": weak, "dup": duplicate, "noise": noise}


class TestPartialCorrelationPvalue:
    def test_strong_association_significant(self, data):
        p = partial_correlation_pvalue(data["strong"], data["y"], None)
        assert p < 1e-10

    def test_noise_not_significant(self, data):
        p = partial_correlation_pvalue(data["noise"], data["y"], None)
        assert p > 0.01

    def test_conditioning_removes_duplicate_signal(self, data):
        marginal = partial_correlation_pvalue(data["dup"], data["y"], None)
        conditioned = partial_correlation_pvalue(
            data["dup"], data["y"], data["strong"].reshape(-1, 1)
        )
        assert marginal < 1e-10
        assert conditioned > marginal

    def test_constant_candidate_never_significant(self, data):
        p = partial_correlation_pvalue(np.zeros_like(data["y"]), data["y"], None)
        assert p == 1.0

    def test_tiny_sample_never_significant(self):
        assert partial_correlation_pvalue(np.array([1.0, 2.0]), np.array([0.0, 1.0]), None) == 1.0

    def test_length_mismatch_raises(self, data):
        with pytest.raises(SelectionError):
            partial_correlation_pvalue(data["y"][:10], data["y"], None)


class TestAlphaInvesting:
    def test_accepts_signal_rejects_noise(self, data):
        selector = AlphaInvestingSelector().start(data["y"])
        assert selector.offer("strong", data["strong"])
        assert not selector.offer("noise", data["noise"])
        assert selector.selected_names == ["strong"]

    def test_duplicate_rejected_after_original(self, data):
        selector = AlphaInvestingSelector().start(data["y"])
        selector.offer("strong", data["strong"])
        assert not selector.offer("dup", data["dup"])

    def test_wealth_grows_on_accept(self, data):
        selector = AlphaInvestingSelector().start(data["y"])
        before = selector.wealth
        selector.offer("strong", data["strong"])
        assert selector.wealth > before

    def test_wealth_shrinks_on_reject(self, data):
        selector = AlphaInvestingSelector().start(data["y"])
        before = selector.wealth
        selector.offer("noise", data["noise"])
        assert selector.wealth < before

    def test_long_noise_stream_accepts_few(self, data):
        rng = np.random.default_rng(9)
        selector = AlphaInvestingSelector().start(data["y"])
        accepted = sum(
            selector.offer(f"n{i}", rng.normal(0, 1, len(data["y"])))
            for i in range(50)
        )
        assert accepted <= 2  # FDR control over the stream

    def test_requires_start(self, data):
        with pytest.raises(SelectionError):
            AlphaInvestingSelector().offer("x", data["noise"])

    def test_invalid_wealth_raises(self):
        with pytest.raises(SelectionError):
            AlphaInvestingSelector(initial_wealth=0.0)

    def test_start_resets(self, data):
        selector = AlphaInvestingSelector().start(data["y"])
        selector.offer("strong", data["strong"])
        selector.start(data["y"])
        assert selector.selected_names == []


class TestFastOSFS:
    def test_accepts_signal_rejects_noise(self, data):
        selector = FastOSFSSelector().start(data["y"])
        assert selector.offer("strong", data["strong"])
        assert not selector.offer("noise", data["noise"])

    def test_duplicate_conditionally_independent(self, data):
        selector = FastOSFSSelector().start(data["y"])
        selector.offer("strong", data["strong"])
        assert not selector.offer("dup", data["dup"])
        assert selector.selected_names == ["strong"]

    def test_complementary_signal_accepted(self, data):
        rng = np.random.default_rng(11)
        other = (1 - data["y"]) + rng.normal(0, 0.3, len(data["y"]))
        selector = FastOSFSSelector().start(data["y"])
        selector.offer("strong", data["strong"])
        # A second, independent view of the label survives the CI check
        # against 'strong' (it still carries information given strong).
        assert selector.offer("other", other)

    def test_requires_start(self, data):
        with pytest.raises(SelectionError):
            FastOSFSSelector().offer("x", data["noise"])

    def test_weak_feature_below_threshold_rejected(self, data):
        selector = FastOSFSSelector(relevance_threshold=0.2).start(data["y"])
        assert not selector.offer("weak", data["weak"])
