"""Unit tests for top-κ selection."""

import numpy as np
import pytest

from repro.errors import SelectionError
from repro.selection import select_k_best, select_k_best_named


@pytest.fixture(scope="module")
def data():
    rng = np.random.default_rng(3)
    n = 1500
    y = rng.integers(0, 2, n).astype(float)
    strong = y + rng.normal(0, 0.2, n)
    weak = y + rng.normal(0, 2.0, n)
    noise = rng.normal(0, 1, n)
    return np.column_stack([noise, strong, weak]), y


class TestSelectKBest:
    def test_orders_by_score(self, data):
        X, y = data
        outcome = select_k_best(X, y, k=3)
        assert outcome.indices[0] == 1  # strong feature first

    def test_k_limits_output(self, data):
        X, y = data
        assert len(select_k_best(X, y, k=1)) == 1

    def test_scores_descending(self, data):
        X, y = data
        scores = select_k_best(X, y, k=3).scores
        assert list(scores) == sorted(scores, reverse=True)

    def test_min_score_filters(self, data):
        X, y = data
        outcome = select_k_best(X, y, k=3, min_score=0.5)
        assert set(outcome.indices) == {1}

    def test_all_filtered_returns_empty(self, data):
        X, y = data
        outcome = select_k_best(X, y, k=3, min_score=2.0)
        assert len(outcome) == 0

    def test_invalid_k_raises(self, data):
        X, y = data
        with pytest.raises(SelectionError):
            select_k_best(X, y, k=0)

    def test_alternate_metric(self, data):
        X, y = data
        outcome = select_k_best(X, y, k=1, metric="pearson")
        assert outcome.indices == (1,)

    def test_deterministic_tie_break(self):
        rng = np.random.default_rng(0)
        y = rng.integers(0, 2, 500).astype(float)
        x = rng.normal(0, 1, 500)
        X = np.column_stack([x, x])  # exactly tied scores
        a = select_k_best(X, y, k=2, min_score=-1.0)
        b = select_k_best(X, y, k=2, min_score=-1.0)
        assert a.indices == b.indices == (0, 1)


class TestNamedWrapper:
    def test_returns_names(self, data):
        X, y = data
        names, scores = select_k_best_named(X, ["n", "s", "w"], y, k=2)
        assert names[0] == "s"
        assert len(names) == len(scores)

    def test_name_count_mismatch_raises(self, data):
        X, y = data
        with pytest.raises(SelectionError):
            select_k_best_named(X, ["a", "b"], y, k=1)
