"""Unit tests for the relevance metric menu."""

import numpy as np
import pytest

from repro.errors import SelectionError
from repro.selection import (
    RELEVANCE_METRICS,
    information_gain,
    pearson_relevance,
    relevance_scores,
    relief_scores,
    spearman_relevance,
    su_relevance,
)


@pytest.fixture(scope="module")
def data():
    rng = np.random.default_rng(0)
    n = 2000
    y = rng.integers(0, 2, n).astype(float)
    informative = y + rng.normal(0, 0.3, n)
    noise = rng.normal(0, 1, n)
    return informative, noise, y


ALL_SCORERS = [
    information_gain,
    su_relevance,
    pearson_relevance,
    spearman_relevance,
]


class TestOrdering:
    @pytest.mark.parametrize("scorer", ALL_SCORERS)
    def test_informative_beats_noise(self, scorer, data):
        informative, noise, y = data
        assert scorer(informative, y) > scorer(noise, y) + 0.05

    def test_relief_informative_beats_noise(self, data):
        informative, noise, y = data
        X = np.column_stack([informative, noise])
        weights = relief_scores(X, y, n_samples=80, seed=0)
        assert weights[0] > weights[1]


class TestEdgeCases:
    @pytest.mark.parametrize("scorer", ALL_SCORERS)
    def test_constant_feature_scores_zero(self, scorer, data):
        __, __, y = data
        assert scorer(np.zeros_like(y), y) == 0.0

    @pytest.mark.parametrize("scorer", ALL_SCORERS)
    def test_nan_entries_ignored(self, scorer, data):
        informative, __, y = data
        with_nans = informative.copy()
        with_nans[::10] = np.nan
        score = scorer(with_nans, y)
        assert score > 0.1

    def test_pearson_bounded(self, data):
        informative, __, y = data
        assert 0.0 <= pearson_relevance(informative, y) <= 1.0

    def test_spearman_bounded(self, data):
        informative, __, y = data
        assert 0.0 <= spearman_relevance(informative, y) <= 1.0

    def test_pearson_sign_insensitive(self, data):
        informative, __, y = data
        assert pearson_relevance(-informative, y) == pytest.approx(
            pearson_relevance(informative, y)
        )

    def test_spearman_monotone_invariance(self, data):
        informative, __, y = data
        shifted = np.exp(informative)  # strictly monotone transform
        assert spearman_relevance(shifted, y) == pytest.approx(
            spearman_relevance(informative, y), abs=1e-9
        )

    def test_length_mismatch_raises(self):
        with pytest.raises(SelectionError):
            pearson_relevance(np.array([1.0, 2.0]), np.array([1.0]))

    def test_tiny_input_scores_zero(self):
        assert spearman_relevance(np.array([1.0]), np.array([1.0])) == 0.0


class TestRelief:
    def test_shape(self, data):
        informative, noise, y = data
        X = np.column_stack([informative, noise])
        assert relief_scores(X, y, n_samples=30).shape == (2,)

    def test_non_negative(self, data):
        informative, noise, y = data
        X = np.column_stack([informative, noise])
        assert (relief_scores(X, y, n_samples=30) >= 0).all()

    def test_deterministic(self, data):
        informative, noise, y = data
        X = np.column_stack([informative, noise])
        a = relief_scores(X, y, n_samples=30, seed=4)
        b = relief_scores(X, y, n_samples=30, seed=4)
        assert np.array_equal(a, b)

    def test_requires_matrix(self, data):
        informative, __, y = data
        with pytest.raises(SelectionError):
            relief_scores(informative, y)

    def test_empty_matrix(self):
        out = relief_scores(np.empty((5, 0)), np.zeros(5))
        assert out.shape == (0,)


class TestRelevanceScores:
    def test_scores_all_columns(self, data):
        informative, noise, y = data
        X = np.column_stack([informative, noise])
        scores = relevance_scores(X, y, metric="spearman")
        assert scores.shape == (2,)
        assert scores[0] > scores[1]

    def test_registry_contains_four_metrics(self):
        assert set(RELEVANCE_METRICS) == {
            "information_gain",
            "symmetrical_uncertainty",
            "pearson",
            "spearman",
        }

    def test_relief_via_dispatcher(self, data):
        informative, noise, y = data
        X = np.column_stack([informative, noise])
        scores = relevance_scores(X, y, metric="relief")
        assert scores[0] > scores[1]

    def test_unknown_metric_raises(self, data):
        informative, __, y = data
        with pytest.raises(SelectionError):
            relevance_scores(informative.reshape(-1, 1), y, metric="chi2")

    def test_requires_matrix(self, data):
        informative, __, y = data
        with pytest.raises(SelectionError):
            relevance_scores(informative, y)

    @pytest.mark.parametrize("metric", ["spearman", "pearson", "information_gain"])
    def test_matches_scalar_scorer(self, metric, data):
        informative, noise, y = data
        X = np.column_stack([informative, noise])
        scores = relevance_scores(X, y, metric=metric)
        scalar = RELEVANCE_METRICS[metric]
        assert scores[0] == pytest.approx(scalar(informative, y))
        assert scores[1] == pytest.approx(scalar(noise, y))
