"""Property-based tests on information-theoretic invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.selection import (
    conditional_mutual_information,
    discretize,
    entropy,
    joint_entropy,
    mutual_information,
    pearson_relevance,
    spearman_relevance,
    symmetrical_uncertainty,
)

codes = arrays(
    np.int64,
    st.integers(min_value=2, max_value=120),
    elements=st.integers(min_value=0, max_value=5),
)
floats = arrays(
    np.float64,
    st.integers(min_value=3, max_value=100),
    elements=st.floats(
        min_value=-100, max_value=100, allow_nan=False, allow_infinity=False
    ),
)


@given(codes)
def test_entropy_non_negative(x):
    assert entropy(x) >= 0.0


@given(codes)
def test_entropy_bounded_by_log_support(x):
    support = len(np.unique(x))
    assert entropy(x) <= np.log(support) + 1e-9


@given(codes)
def test_self_mi_equals_entropy(x):
    assert mutual_information(x, x) == entropy(x)


@given(codes, codes)
@settings(max_examples=80)
def test_mi_symmetric_and_nonneg(x, y):
    n = min(len(x), len(y))
    x, y = x[:n], y[:n]
    mi_xy = mutual_information(x, y)
    mi_yx = mutual_information(y, x)
    assert mi_xy >= 0.0
    assert abs(mi_xy - mi_yx) < 1e-9


@given(codes, codes)
@settings(max_examples=80)
def test_mi_bounded_by_marginal_entropies(x, y):
    n = min(len(x), len(y))
    x, y = x[:n], y[:n]
    assert mutual_information(x, y) <= min(entropy(x), entropy(y)) + 1e-9


@given(codes, codes)
@settings(max_examples=80)
def test_joint_entropy_subadditive(x, y):
    n = min(len(x), len(y))
    x, y = x[:n], y[:n]
    assert joint_entropy(x, y) <= entropy(x) + entropy(y) + 1e-9


@given(codes, codes)
@settings(max_examples=60)
def test_su_bounded(x, y):
    n = min(len(x), len(y))
    assert 0.0 <= symmetrical_uncertainty(x[:n], y[:n]) <= 1.0


@given(codes, codes, codes)
@settings(max_examples=50)
def test_cmi_non_negative(x, y, z):
    n = min(len(x), len(y), len(z))
    assert conditional_mutual_information(x[:n], y[:n], z[:n]) >= 0.0


@given(floats)
def test_discretize_codes_in_range(x):
    out = discretize(x, n_bins=10)
    finite = out[out >= 0]
    if finite.size:
        assert finite.max() < max(10, 32)
    assert (out >= -1).all()


@given(floats, floats)
@settings(max_examples=80)
def test_pearson_spearman_bounded(x, y):
    n = min(len(x), len(y))
    assert 0.0 <= pearson_relevance(x[:n], y[:n]) <= 1.0
    assert 0.0 <= spearman_relevance(x[:n], y[:n]) <= 1.0


@given(floats)
@settings(max_examples=60)
def test_spearman_perfect_self_correlation(x):
    if len(np.unique(x)) < 2:
        assert spearman_relevance(x, x) == 0.0
    else:
        assert spearman_relevance(x, x) > 0.99


@given(floats, st.floats(min_value=0.1, max_value=10), st.floats(min_value=-5, max_value=5))
@settings(max_examples=60)
def test_pearson_affine_invariance(x, scale, shift):
    y = scale * x + shift
    tiny = float(np.finfo(np.float64).tiny)
    degenerate_y = np.std(y) <= 1e-12 * max(float(np.abs(y).max()), tiny)
    degenerate_x = np.std(x) <= 1e-12 * max(float(np.abs(x).max()), tiny)
    if len(np.unique(x)) < 2 or degenerate_x or degenerate_y:
        # Spreads that underflow against the shift are float degeneracy,
        # not a correlation property (pearson_relevance treats such
        # vectors as constant and scores 0).
        return
    assert pearson_relevance(x, y) > 0.999
