"""Bit-identity tests: vectorised selection kernels vs the scalar path.

The kernels' contract is *exact* float equality with the scalar
implementations (not approximate agreement) — that is what makes
``AutoFeatConfig.enable_selection_kernels`` a true A/B switch and lets the
benchmark assert ranking parity.  Every comparison below therefore uses
``==``, never ``pytest.approx``.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core import AutoFeatConfig
from repro.core.streaming import StreamingFeatureSelector
from repro.errors import SelectionError
from repro.selection import (
    REDUNDANCY_METHODS,
    SelectionCodeCache,
    SelectionCounters,
    SelectionStats,
    batch_redundancy_scores,
    batch_relevance_scores,
    batch_spearman_scores,
    discretize,
    greedy_select,
    rank_matrix,
    redundancy_scores,
    relevance_scores,
)
from repro.selection.relevance import _rankdata

METHODS = sorted(REDUNDANCY_METHODS)


@st.composite
def feature_matrices(draw, max_rows=25, max_cols=4, allow_nan=True):
    """(X, y) pairs mixing continuous values, heavy ties and optional NaNs."""
    n = draw(st.integers(min_value=2, max_value=max_rows))
    d = draw(st.integers(min_value=1, max_value=max_cols))
    finite = st.floats(
        min_value=-9, max_value=9, allow_nan=False, allow_infinity=False
    )
    X = draw(arrays(np.float64, (n, d), elements=finite))
    if draw(st.booleans()):  # rounding forces ties / small discrete domains
        X = np.round(X)
    y = draw(arrays(np.float64, n, elements=finite))
    if draw(st.booleans()):
        y = np.round(y)
    if allow_nan and draw(st.booleans()):
        X = X.copy()
        X[draw(arrays(np.bool_, (n, d)))] = np.nan
    if allow_nan and draw(st.booleans()):
        y = y.copy()
        y[draw(arrays(np.bool_, n))] = np.nan
    return X, y


class TestRankMatrix:
    @given(feature_matrices(allow_nan=False))
    @settings(max_examples=80, deadline=None)
    def test_matches_per_column_rankdata(self, data):
        X, __ = data
        ranks = rank_matrix(X)
        for j in range(X.shape[1]):
            assert ranks[:, j].tolist() == _rankdata(X[:, j]).tolist()

    def test_empty_matrix(self):
        assert rank_matrix(np.empty((0, 3))).shape == (0, 3)
        assert rank_matrix(np.empty((4, 0))).shape == (4, 0)

    def test_rejects_1d(self):
        with pytest.raises(SelectionError):
            rank_matrix(np.arange(5.0))

    def test_fortran_ordered(self):
        out = rank_matrix(np.random.default_rng(0).normal(size=(8, 3)))
        assert out.flags.f_contiguous


class TestBatchSpearman:
    @given(feature_matrices())
    @settings(max_examples=100, deadline=None)
    def test_bit_identical_to_scalar(self, data):
        X, y = data
        kernel = batch_spearman_scores(X, y)
        scalar = relevance_scores(X, y, metric="spearman")
        assert kernel.tolist() == scalar.tolist()

    def test_constant_column_scores_zero(self):
        X = np.column_stack([np.full(20, 3.0), np.arange(20.0)])
        y = np.arange(20.0)
        kernel = batch_spearman_scores(X, y)
        assert kernel[0] == 0.0
        assert kernel.tolist() == relevance_scores(X, y, metric="spearman").tolist()

    def test_nan_label_handled_by_masked_groups(self):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(30, 3))
        y = rng.normal(size=30)
        y[5] = np.nan
        counters = SelectionCounters()
        kernel = batch_spearman_scores(X, y, counters=counters)
        # All three columns share the label's mask: one masked group, no
        # scalar fallback, identical scores.
        assert counters.scalar_fallbacks == 0
        assert kernel.tolist() == relevance_scores(X, y, metric="spearman").tolist()

    def test_distinct_nan_masks_stay_exact(self):
        rng = np.random.default_rng(2)
        X = rng.normal(size=(30, 4))
        X[3, 1] = np.nan
        X[7, 2] = np.nan
        X[7, 3] = np.nan
        y = np.arange(30.0)
        kernel = batch_spearman_scores(X, y)
        assert kernel.tolist() == relevance_scores(X, y, metric="spearman").tolist()

    def test_single_row_matrix_scores_zero(self):
        X = np.asarray([[1.0, 2.0]])
        assert batch_spearman_scores(X, np.asarray([1.0])).tolist() == [0.0, 0.0]


class TestBatchRelevance:
    @pytest.mark.parametrize(
        "metric", ["information_gain", "symmetrical_uncertainty", "pearson", "relief"]
    )
    def test_other_metrics_delegate_to_scalar(self, metric):
        rng = np.random.default_rng(3)
        X = rng.normal(size=(40, 3))
        y = (X[:, 0] > 0).astype(float)
        kernel = batch_relevance_scores(X, y, metric=metric, seed=7)
        scalar = relevance_scores(X, y, metric=metric, seed=7)
        assert kernel.tolist() == scalar.tolist()

    def test_unknown_metric_rejected(self):
        with pytest.raises(SelectionError):
            batch_relevance_scores(np.zeros((4, 1)), np.zeros(4), metric="nope")

    def test_counts_features_ranked(self):
        counters = SelectionCounters()
        batch_relevance_scores(
            np.zeros((5, 3)), np.arange(5.0), counters=counters
        )
        assert counters.features_ranked == 3


def _cache_for(selected: np.ndarray | None, label: np.ndarray) -> SelectionCodeCache:
    cache = SelectionCodeCache(label)
    if selected is not None and selected.size:
        for i in range(selected.shape[1]):
            cache.add(selected[:, i])
    return cache


class TestBatchRedundancy:
    @given(feature_matrices(), st.sampled_from(METHODS), st.integers(0, 3))
    @settings(max_examples=100, deadline=None)
    def test_bit_identical_to_scalar(self, data, method, n_selected):
        X, y = data
        rng = np.random.default_rng(n_selected)
        selected = (
            np.round(rng.normal(size=(X.shape[0], n_selected)) * 3)
            if n_selected
            else None
        )
        kernel = batch_redundancy_scores(X, _cache_for(selected, y), method=method)
        scalar = redundancy_scores(X, selected, y, method=method)
        assert kernel.tolist() == scalar.tolist()

    @pytest.mark.parametrize("method", METHODS)
    def test_nan_everywhere_still_identical(self, method):
        rng = np.random.default_rng(11)
        X = rng.normal(size=(40, 3))
        X[::7, 0] = np.nan
        selected = rng.normal(size=(40, 2))
        selected[::5, 1] = np.nan
        y = rng.normal(size=40)
        y[::9] = np.nan
        kernel = batch_redundancy_scores(X, _cache_for(selected, y), method=method)
        scalar = redundancy_scores(X, selected, y, method=method)
        assert kernel.tolist() == scalar.tolist()

    @pytest.mark.parametrize("method", METHODS)
    def test_empty_selected_set_reduces_to_relevance(self, method):
        rng = np.random.default_rng(13)
        X = rng.normal(size=(30, 4))
        y = (X[:, 0] > 0).astype(float)
        kernel = batch_redundancy_scores(X, _cache_for(None, y), method=method)
        scalar = redundancy_scores(X, None, y, method=method)
        assert kernel.tolist() == scalar.tolist()

    def test_unknown_method_rejected(self):
        with pytest.raises(SelectionError):
            batch_redundancy_scores(
                np.zeros((4, 1)), _cache_for(None, np.zeros(4)), method="nope"
            )

    def test_row_mismatch_rejected(self):
        with pytest.raises(SelectionError):
            batch_redundancy_scores(
                np.zeros((4, 1)), _cache_for(None, np.zeros(5)), method="mrmr"
            )

    def test_reuse_counted_per_cached_code(self):
        rng = np.random.default_rng(17)
        selected = rng.normal(size=(20, 3))
        y = np.arange(20.0)
        counters = SelectionCounters()
        batch_redundancy_scores(
            rng.normal(size=(20, 2)),
            _cache_for(selected, y),
            method="mrmr",
            counters=counters,
        )
        assert counters.codes_reused == 3


def _naive_greedy(X, label, k, method):
    """The pre-optimisation rescoring loop, kept as the reference oracle."""
    label_codes = discretize(np.asarray(label, dtype=np.float64))
    d = X.shape[1]
    codes = [discretize(X[:, j]) for j in range(d)]
    scorer = REDUNDANCY_METHODS[method]
    selected = []
    while len(selected) < min(k, d):
        sel_codes = [codes[i] for i in selected]
        best_j, best_score = -1, -np.inf
        for j in range(d):
            if j in selected:
                continue
            score = scorer(codes[j], sel_codes, label_codes).score
            if score > best_score:
                best_j, best_score = j, score
        if best_j < 0:
            break
        selected.append(best_j)
    return selected


class TestIncrementalGreedy:
    @given(
        feature_matrices(max_rows=20, max_cols=4),
        st.sampled_from(METHODS),
        st.integers(1, 4),
    )
    @settings(max_examples=60, deadline=None)
    def test_matches_naive_rescoring_loop(self, data, method, k):
        X, y = data
        assert greedy_select(X, y, k=k, method=method) == _naive_greedy(
            X, y, k, method
        )

    def test_redundant_copies_deferred(self):
        rng = np.random.default_rng(23)
        signal = rng.integers(0, 4, size=60).astype(float)
        X = np.column_stack([signal, signal, rng.normal(size=60)])
        y = signal + rng.normal(scale=0.1, size=60)
        order = greedy_select(X, y, k=3, method="mrmr")
        assert order[0] == 0  # ties broken by column index
        assert order[1] == 2  # the duplicate of column 0 goes last
        assert order == _naive_greedy(X, y, 3, "mrmr")


class TestSelectionStats:
    def test_snapshot_freezes_counters(self):
        counters = SelectionCounters(batches_scored=2, features_ranked=9)
        stats = counters.snapshot()
        counters.batches_scored = 5
        assert stats.batches_scored == 2
        assert stats.features_ranked == 9

    def test_merged_sums_fields(self):
        a = SelectionStats(1, 2, 3, 4, 5)
        b = SelectionStats(10, 20, 30, 40, 50)
        merged = a.merged(b)
        assert merged.as_dict() == {
            "batches_scored": 11,
            "features_ranked": 22,
            "codes_cached": 33,
            "codes_reused": 44,
            "scalar_fallbacks": 55,
        }

    def test_code_reuse_rate(self):
        assert SelectionStats().code_reuse_rate == 0.0
        assert SelectionStats(codes_cached=1, codes_reused=3).code_reuse_rate == 0.75

    def test_describe_mentions_every_counter(self):
        text = SelectionStats(5, 37, 12, 3, 0).describe()
        assert text == (
            "5 batches, 37 features ranked, 12 codes cached / 3 reused, "
            "0 scalar fallbacks"
        )

    def test_cache_counts_label_and_features(self):
        counters = SelectionCounters()
        cache = SelectionCodeCache(np.arange(10.0), counters)
        cache.add(np.arange(10.0) % 3)
        assert counters.codes_cached == 2
        assert cache.n_selected == 1


def _run_selector(config, label, batches):
    selector = StreamingFeatureSelector(config, label)
    seed_names, seed_matrix = batches[0]
    selector.seed_with(seed_names, seed_matrix)
    outcomes = [selector.process_batch(n, m) for n, m in batches[1:]]
    return selector, outcomes


class TestStreamingParity:
    def test_kernels_on_off_identical_over_batches(self):
        rng = np.random.default_rng(29)
        n = 120
        label = (rng.normal(size=n) > 0).astype(float)
        batches = [(["seed_a", "seed_b"], rng.normal(size=(n, 2)))]
        for b in range(4):
            cols = rng.normal(size=(n, 3))
            cols[:, 0] += label  # keep some batches partially relevant
            if b == 2:
                cols[::6, 1] = np.nan  # exercise the scalar fallbacks
            batches.append(([f"b{b}_{j}" for j in range(3)], cols))

        on = AutoFeatConfig(enable_selection_kernels=True)
        off = AutoFeatConfig(enable_selection_kernels=False)
        sel_on, out_on = _run_selector(on, label, batches)
        sel_off, out_off = _run_selector(off, label, batches)

        assert sel_on.selected_names == sel_off.selected_names
        for a, b in zip(out_on, out_off):
            assert a.relevant_names == b.relevant_names
            assert a.relevance_scores == b.relevance_scores
            assert a.accepted_names == b.accepted_names
            assert a.redundancy_scores == b.redundancy_scores

    def test_stats_report_cache_activity(self):
        rng = np.random.default_rng(31)
        n = 80
        label = (rng.normal(size=n) > 0).astype(float)
        batches = [(["s0"], rng.normal(size=(n, 1)))]
        batches.append((["f0", "f1"], np.column_stack([label, rng.normal(size=n)])))
        selector, __ = _run_selector(
            AutoFeatConfig(enable_selection_kernels=True), label, batches
        )
        stats = selector.stats
        assert stats.batches_scored == 1
        assert stats.features_ranked == 2
        assert stats.codes_cached >= 2  # label + seed + any accepted features
        assert stats.codes_reused >= 1

    def test_kernels_off_leaves_cache_counters_zero(self):
        rng = np.random.default_rng(37)
        n = 60
        label = (rng.normal(size=n) > 0).astype(float)
        batches = [
            (["s0"], rng.normal(size=(n, 1))),
            (["f0"], label.reshape(-1, 1) + rng.normal(scale=0.1, size=(n, 1))),
        ]
        selector, __ = _run_selector(
            AutoFeatConfig(enable_selection_kernels=False), label, batches
        )
        stats = selector.stats
        assert stats.codes_cached == 0
        assert stats.codes_reused == 0
        assert stats.batches_scored == 1
