"""Unit tests for the Shannon information estimators."""

import numpy as np
import pytest

from repro.errors import SelectionError
from repro.selection import (
    conditional_mutual_information,
    discretize,
    entropy,
    joint_entropy,
    mutual_information,
    symmetrical_uncertainty,
)


class TestDiscretize:
    def test_small_domains_kept_as_codes(self):
        codes = discretize(np.array([5.0, 7.0, 5.0, 9.0]))
        assert list(codes) == [0, 1, 0, 2]

    def test_wide_domains_binned(self):
        x = np.linspace(0, 1, 1000)
        codes = discretize(x, n_bins=10)
        assert codes.min() == 0
        assert codes.max() == 9

    def test_nan_coded_minus_one(self):
        codes = discretize(np.array([1.0, np.nan, 2.0]))
        assert codes[1] == -1

    def test_all_nan(self):
        codes = discretize(np.array([np.nan, np.nan]))
        assert list(codes) == [-1, -1]

    def test_constant_column_single_bin(self):
        codes = discretize(np.full(100, 3.7))
        assert set(codes) == {0}

    def test_constant_wide_column(self):
        x = np.full(100, 3.7)
        x[0] = np.nan
        assert set(discretize(x)) == {-1, 0}

    def test_too_few_bins_raise(self):
        with pytest.raises(SelectionError):
            discretize(np.array([1.0]), n_bins=1)


class TestEntropy:
    def test_uniform_two_values(self):
        codes = np.array([0, 1] * 500)
        assert entropy(codes) == pytest.approx(np.log(2))

    def test_constant_is_zero(self):
        assert entropy(np.zeros(100, dtype=np.int64)) == 0.0

    def test_empty_is_zero(self):
        assert entropy(np.array([], dtype=np.int64)) == 0.0

    def test_missing_codes_excluded(self):
        codes = np.array([0, 0, -1, -1])
        assert entropy(codes) == 0.0

    def test_uniform_k_values(self):
        codes = np.arange(8).repeat(100)
        assert entropy(codes) == pytest.approx(np.log(8))


class TestMutualInformation:
    def test_identical_variables(self):
        x = np.array([0, 1] * 500)
        assert mutual_information(x, x) == pytest.approx(np.log(2))

    def test_independent_variables_near_zero(self):
        rng = np.random.default_rng(0)
        x = rng.integers(0, 2, 5000)
        y = rng.integers(0, 2, 5000)
        assert mutual_information(x, y) < 0.01

    def test_symmetry(self):
        rng = np.random.default_rng(1)
        x = rng.integers(0, 4, 1000)
        y = (x + rng.integers(0, 2, 1000)) % 4
        assert mutual_information(x, y) == pytest.approx(mutual_information(y, x))

    def test_non_negative(self):
        rng = np.random.default_rng(2)
        for __ in range(5):
            x = rng.integers(0, 5, 200)
            y = rng.integers(0, 5, 200)
            assert mutual_information(x, y) >= 0.0

    def test_length_mismatch_raises(self):
        with pytest.raises(SelectionError):
            mutual_information(np.array([0, 1]), np.array([0]))

    def test_joint_entropy_bounds(self):
        rng = np.random.default_rng(3)
        x = rng.integers(0, 3, 500)
        y = rng.integers(0, 3, 500)
        hx, hy, hxy = entropy(x), entropy(y), joint_entropy(x, y)
        assert max(hx, hy) <= hxy + 1e-9
        assert hxy <= hx + hy + 1e-9


class TestConditionalMI:
    def test_conditioning_on_self_removes_information(self):
        x = np.array([0, 1] * 500)
        assert conditional_mutual_information(x, x, x) == pytest.approx(0.0)

    def test_chain_rule_example(self):
        # X and Y independent, Z = X xor Y: I(X;Y|Z) = log 2.
        rng = np.random.default_rng(4)
        x = rng.integers(0, 2, 20000)
        y = rng.integers(0, 2, 20000)
        z = x ^ y
        assert conditional_mutual_information(x, y, z) == pytest.approx(
            np.log(2), abs=0.01
        )

    def test_non_negative(self):
        rng = np.random.default_rng(5)
        x = rng.integers(0, 3, 300)
        y = rng.integers(0, 3, 300)
        z = rng.integers(0, 3, 300)
        assert conditional_mutual_information(x, y, z) >= 0.0

    def test_length_mismatch_raises(self):
        with pytest.raises(SelectionError):
            conditional_mutual_information(
                np.array([0]), np.array([0, 1]), np.array([0, 1])
            )


class TestSymmetricalUncertainty:
    def test_identical_is_one(self):
        x = np.array([0, 1, 2] * 100)
        assert symmetrical_uncertainty(x, x) == pytest.approx(1.0)

    def test_independent_near_zero(self):
        rng = np.random.default_rng(6)
        x = rng.integers(0, 2, 5000)
        y = rng.integers(0, 2, 5000)
        assert symmetrical_uncertainty(x, y) < 0.01

    def test_bounded(self):
        rng = np.random.default_rng(7)
        for __ in range(10):
            x = rng.integers(0, 6, 200)
            y = rng.integers(0, 6, 200)
            assert 0.0 <= symmetrical_uncertainty(x, y) <= 1.0

    def test_constant_variable_scores_zero(self):
        x = np.zeros(100, dtype=np.int64)
        y = np.array([0, 1] * 50)
        assert symmetrical_uncertainty(x, y) == 0.0
