"""Unit tests for the redundancy methods (Equation 1/2 family)."""

import numpy as np
import pytest

from repro.errors import SelectionError
from repro.selection import (
    REDUNDANCY_METHODS,
    greedy_select,
    redundancy_score,
    redundancy_scores,
)


@pytest.fixture(scope="module")
def data():
    rng = np.random.default_rng(1)
    n = 2000
    y = rng.integers(0, 2, n).astype(float)
    informative = y + rng.normal(0, 0.3, n)
    duplicate = informative + rng.normal(0, 0.01, n)
    independent_signal = (1 - y) + rng.normal(0, 0.3, n)
    noise = rng.normal(0, 1, n)
    return {
        "y": y,
        "informative": informative,
        "duplicate": duplicate,
        "independent_signal": independent_signal,
        "noise": noise,
    }


ALL_METHODS = sorted(REDUNDANCY_METHODS)


class TestScoreStructure:
    @pytest.mark.parametrize("method", ALL_METHODS)
    def test_empty_selected_set_reduces_to_relevance(self, method, data):
        result = redundancy_score(data["informative"], None, data["y"], method)
        assert result.score == pytest.approx(result.relevance_term)
        assert result.redundancy_term == 0.0

    @pytest.mark.parametrize("method", ALL_METHODS)
    def test_duplicate_is_penalised(self, method, data):
        selected = data["informative"].reshape(-1, 1)
        alone = redundancy_score(data["duplicate"], None, data["y"], method).score
        against = redundancy_score(
            data["duplicate"], selected, data["y"], method
        ).score
        assert against < alone

    @pytest.mark.parametrize("method", ALL_METHODS)
    def test_fresh_noise_is_not_strongly_penalised(self, method, data):
        selected = data["informative"].reshape(-1, 1)
        result = redundancy_score(data["noise"], selected, data["y"], method)
        assert result.score > -0.2

    def test_unknown_method_raises(self, data):
        with pytest.raises(SelectionError):
            redundancy_score(data["noise"], None, data["y"], "pca")


class TestMethodSpecifics:
    def test_mifs_uses_constant_beta(self, data):
        # With two identical selected features, MIFS doubles the penalty
        # while MRMR (beta = 1/|S|) keeps it constant.
        y = data["y"]
        one = data["informative"].reshape(-1, 1)
        two = np.column_stack([data["informative"], data["informative"]])
        mifs_one = redundancy_score(data["duplicate"], one, y, "mifs").score
        mifs_two = redundancy_score(data["duplicate"], two, y, "mifs").score
        mrmr_one = redundancy_score(data["duplicate"], one, y, "mrmr").score
        mrmr_two = redundancy_score(data["duplicate"], two, y, "mrmr").score
        assert mifs_two < mifs_one - 0.1
        assert mrmr_two == pytest.approx(mrmr_one, abs=0.05)

    def test_cife_rewards_conditional_complement(self, data):
        # CIFE adds the conditional term; the score of a complementary
        # feature should not fall below its CMIM counterpart by much.
        y = data["y"]
        selected = data["informative"].reshape(-1, 1)
        cife = redundancy_score(data["independent_signal"], selected, y, "cife")
        assert cife.conditional_term >= 0.0

    def test_cmim_uses_max_not_sum(self, data):
        # CMIM's penalty is the max over selected features: adding the same
        # feature twice to S must not increase the penalty.
        y = data["y"]
        one = data["informative"].reshape(-1, 1)
        two = np.column_stack([data["informative"], data["informative"]])
        cmim_one = redundancy_score(data["duplicate"], one, y, "cmim").score
        cmim_two = redundancy_score(data["duplicate"], two, y, "cmim").score
        assert cmim_two == pytest.approx(cmim_one, abs=0.02)

    @pytest.mark.parametrize("method", ["jmi", "mrmr"])
    def test_size_normalised_methods_stable_with_set_growth(self, method, data):
        y = data["y"]
        rng = np.random.default_rng(2)
        small = np.column_stack([data["informative"]])
        large = np.column_stack(
            [data["informative"]] + [rng.normal(0, 1, len(y)) for __ in range(4)]
        )
        s_small = redundancy_score(data["duplicate"], small, y, method).score
        s_large = redundancy_score(data["duplicate"], large, y, method).score
        # Adding unrelated noise to S dilutes the (normalised) penalty.
        assert s_large >= s_small - 0.05


class TestBatchScores:
    def test_matches_scalar(self, data):
        X = np.column_stack([data["duplicate"], data["noise"]])
        selected = data["informative"].reshape(-1, 1)
        batch = redundancy_scores(X, selected, data["y"], "mrmr")
        for j, column in enumerate((data["duplicate"], data["noise"])):
            scalar = redundancy_score(column, selected, data["y"], "mrmr").score
            assert batch[j] == pytest.approx(scalar)

    def test_requires_matrix(self, data):
        with pytest.raises(SelectionError):
            redundancy_scores(data["noise"], None, data["y"])

    def test_unknown_method_raises(self, data):
        with pytest.raises(SelectionError):
            redundancy_scores(
                data["noise"].reshape(-1, 1), None, data["y"], "rfe"
            )


class TestGreedySelect:
    def test_picks_informative_first(self, data):
        X = np.column_stack([data["noise"], data["informative"], data["duplicate"]])
        picked = greedy_select(X, data["y"], k=1, method="mrmr")
        assert picked[0] in (1, 2)  # informative or its duplicate

    def test_avoids_duplicate_second(self, data):
        X = np.column_stack(
            [data["informative"], data["duplicate"], data["independent_signal"]]
        )
        picked = greedy_select(X, data["y"], k=2, method="mrmr")
        assert set(picked) != {0, 1}  # never informative + its duplicate

    def test_k_caps_at_n_features(self, data):
        X = np.column_stack([data["informative"], data["noise"]])
        assert len(greedy_select(X, data["y"], k=10)) == 2

    def test_unknown_method_raises(self, data):
        with pytest.raises(SelectionError):
            greedy_select(data["noise"].reshape(-1, 1), data["y"], 1, "lasso")

    def test_invalid_k_raises(self, data):
        with pytest.raises(SelectionError):
            greedy_select(data["noise"].reshape(-1, 1), data["y"], 0)

    @pytest.mark.parametrize("method", ALL_METHODS)
    def test_all_methods_run(self, method, data):
        X = np.column_stack([data["informative"], data["noise"]])
        picked = greedy_select(X, data["y"], k=2, method=method)
        assert len(picked) == 2
        assert len(set(picked)) == 2
