"""Behavioural tests for BASE, ARDA, MAB and JoinAll(+F)."""

import numpy as np
import pytest

from repro.baselines import (
    FEASIBILITY_CAP,
    BaselineResult,
    join_all_table,
    rifs_select,
    run_arda,
    run_autofeat,
    run_base,
    run_join_all,
    run_mab,
)
from repro.dataframe import Table
from repro.errors import JoinError
from repro.graph import DatasetRelationGraph, KFKConstraint


@pytest.fixture(scope="module")
def lake():
    """Base with weak signal; strong features one hop (t1) and two hops (t2) away."""
    rng = np.random.default_rng(11)
    n = 500
    ids = np.arange(n)
    k1 = rng.permutation(n) + 10_000
    k2 = rng.permutation(n) + 50_000
    s1 = rng.normal(0, 1, n)
    s2 = rng.normal(0, 1, n)
    label = ((s1 + s2 + rng.normal(0, 0.5, n)) > 0).astype(int)
    base = Table(
        {"id": ids, "t1_key": k1, "weak": rng.normal(0, 1, n), "label": label},
        name="base",
    )
    t1 = Table({"t1_key": k1, "t2_key": k2, "s1": s1}, name="t1")
    t2 = Table({"t2_key": k2, "s2": s2}, name="t2")
    junk = Table({"id": ids, "junk": rng.normal(0, 1, n)}, name="junk")
    drg = DatasetRelationGraph.from_constraints(
        [base, t1, t2, junk],
        [
            KFKConstraint("base", "t1_key", "t1", "t1_key"),
            KFKConstraint("t1", "t2_key", "t2", "t2_key"),
            KFKConstraint("base", "id", "junk", "id"),
        ],
    )
    return drg, base


class TestBase:
    def test_result_record(self, lake):
        __, base = lake
        result = run_base(base, "label", "lightgbm", seed=1)
        assert result.method == "BASE"
        assert result.n_joined_tables == 0
        assert result.feature_selection_seconds == 0.0
        assert 0.0 <= result.accuracy <= 1.0

    def test_row_shape(self, lake):
        __, base = lake
        row = run_base(base, "label", seed=1).row()
        assert set(row) == {
            "method",
            "dataset",
            "model",
            "accuracy",
            "fs_seconds",
            "total_seconds",
            "joined_tables",
            "features",
        }


class TestRIFS:
    def test_signal_survives_noise_injection(self):
        rng = np.random.default_rng(0)
        n = 400
        y = rng.integers(0, 2, n)
        signal = y + rng.normal(0, 0.3, n)
        X = np.column_stack([signal, rng.normal(0, 1, (n, 3))])
        survivors = rifs_select(X, y, ["signal", "n1", "n2", "n3"], seed=0)
        assert "signal" in survivors[0.5]

    def test_thresholds_nested(self):
        rng = np.random.default_rng(1)
        n = 300
        y = rng.integers(0, 2, n)
        X = np.column_stack([y + rng.normal(0, 0.5, n), rng.normal(0, 1, n)])
        survivors = rifs_select(X, y, ["a", "b"], seed=0)
        assert set(survivors[0.7]) <= set(survivors[0.3])


class TestArda:
    def test_single_hop_only(self, lake):
        drg, __ = lake
        result = run_arda(drg, "base", "label", "lightgbm", seed=1)
        # ARDA joins only direct neighbours: t1 and junk (not t2).
        assert result.n_joined_tables == 2

    def test_misses_two_hop_signal(self, lake):
        drg, __ = lake
        arda = run_arda(drg, "base", "label", "lightgbm", seed=1)
        autofeat = run_autofeat(drg, "base", "label", "lightgbm", seed=1)
        assert autofeat.accuracy >= arda.accuracy

    def test_fs_time_dominates(self, lake):
        drg, __ = lake
        result = run_arda(drg, "base", "label", "lightgbm", seed=1)
        assert result.feature_selection_seconds > 0.1


class TestMab:
    def test_reaches_signal_through_same_names(self, lake):
        drg, base = lake
        result = run_mab(drg, "base", "label", "lightgbm", budget=8, seed=1)
        base_acc = run_base(base, "label", "lightgbm", seed=1).accuracy
        assert result.accuracy >= base_acc

    def test_budget_limits_joins(self, lake):
        drg, __ = lake
        result = run_mab(drg, "base", "label", "lightgbm", budget=1, seed=1)
        assert result.n_joined_tables <= 1

    def test_model_in_the_loop_is_slow(self, lake):
        drg, __ = lake
        mab = run_mab(drg, "base", "label", "lightgbm", budget=6, seed=1)
        autofeat = run_autofeat(drg, "base", "label", "lightgbm", seed=1)
        assert mab.feature_selection_seconds > autofeat.feature_selection_seconds


class TestJoinAll:
    def test_joins_every_reachable_table(self, lake):
        drg, __ = lake
        wide, joined = join_all_table(drg, "base")
        assert joined == 3
        assert "t2.s2" in wide

    def test_accuracy_is_ceiling(self, lake):
        drg, base = lake
        result = run_join_all(drg, "base", "label", "lightgbm", seed=1)
        base_acc = run_base(base, "label", "lightgbm", seed=1).accuracy
        assert result.accuracy > base_acc

    def test_filter_variant_selects_kappa(self, lake):
        drg, __ = lake
        result = run_join_all(
            drg, "base", "label", "lightgbm", with_filter=True, kappa=3, seed=1
        )
        assert result.method == "JoinAll+F"
        assert result.n_features_used <= 3
        assert result.feature_selection_seconds > 0

    def test_feasibility_cap(self, lake):
        drg, __ = lake
        with pytest.raises(JoinError):
            run_join_all(drg, "base", "label", feasibility_cap=0)

    def test_default_cap_allows_small_graphs(self, lake):
        drg, __ = lake
        run_join_all(drg, "base", "label", "lightgbm", seed=1)
        assert FEASIBILITY_CAP >= 10**6


class TestAutoFeatAdapter:
    def test_record_fields(self, lake):
        drg, __ = lake
        result = run_autofeat(drg, "base", "label", "lightgbm", seed=1)
        assert isinstance(result, BaselineResult)
        assert result.method == "AutoFeat"
        assert result.n_joined_tables >= 1
        assert result.feature_selection_seconds > 0

    def test_beats_base(self, lake):
        drg, base = lake
        autofeat = run_autofeat(drg, "base", "label", "lightgbm", seed=1)
        base_acc = run_base(base, "label", "lightgbm", seed=1).accuracy
        assert autofeat.accuracy > base_acc


class TestMabUcbColdStart:
    """Regression for the UCB cold-start bug (shared ucb_score)."""

    def test_unpulled_arm_scores_infinite(self):
        from repro.baselines.mab import _Arm

        arm = _Arm(source="a", target="b")
        assert arm.ucb(total_pulls=0, exploration=0.5) == float("inf")
        assert arm.ucb(total_pulls=50, exploration=0.5) == float("inf")

    def test_exploration_bonus_positive_after_first_pull(self):
        from repro.baselines.mab import _Arm

        # The old log(max(total, 1)) form returned a bare one-sample
        # mean here (zero bonus while total_pulls <= 1).
        arm = _Arm(source="a", target="b", pulls=1, total_reward=0.0)
        assert arm.ucb(total_pulls=1, exploration=0.5) > 0.0

    def test_run_mab_deterministic_per_seed(self, lake):
        drg, __ = lake
        runs = [
            run_mab(drg, "base", "label", "lightgbm", budget=5, seed=3)
            for _ in range(2)
        ]
        assert runs[0].accuracy == runs[1].accuracy
        assert runs[0].n_joined_tables == runs[1].n_joined_tables
        assert runs[0].n_features_used == runs[1].n_features_used

    def test_run_mab_seeds_change_only_via_model(self, lake):
        # Arm selection is deterministic given the pull history; the seed
        # enters through sampling/model training, so the run completes
        # and reports coherent accounting for any seed.
        drg, __ = lake
        result = run_mab(drg, "base", "label", "lightgbm", budget=4, seed=9)
        assert 0.0 <= result.accuracy <= 1.0
        assert result.run_manifest.metrics["counters"]["mab.pulls"] <= 4
