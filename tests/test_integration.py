"""End-to-end integration tests reproducing the paper's headline shapes.

These run the full pipeline — lake generation, DRG construction (both
settings), discovery, ranking, training — and assert the *orderings* the
paper reports: AutoFeat beats BASE, matches-or-beats single-hop ARDA when
signal is transitive, and spends far less time in feature selection than
the model-in-the-loop baselines.
"""

import pytest

from repro.baselines import run_arda, run_autofeat, run_base
from repro.bench import build_setting
from repro.core import AutoFeat, AutoFeatConfig
from repro.datasets import build_dataset


@pytest.fixture(scope="module")
def bundle():
    return build_dataset("credit")


@pytest.fixture(scope="module")
def benchmark_graph(bundle):
    return build_setting(bundle, "benchmark")


@pytest.fixture(scope="module")
def datalake(bundle):
    return build_setting(bundle, "datalake")


@pytest.fixture(scope="module")
def results(bundle, benchmark_graph):
    seed = 1
    return {
        "base": run_base(bundle.base_table, bundle.label_column, "lightgbm", seed=seed),
        "autofeat": run_autofeat(
            benchmark_graph, bundle.base_name, bundle.label_column, "lightgbm", seed=seed
        ),
        "arda": run_arda(
            benchmark_graph, bundle.base_name, bundle.label_column, "lightgbm", seed=seed
        ),
    }


class TestBenchmarkSettingShape:
    def test_autofeat_beats_base(self, results):
        assert results["autofeat"].accuracy > results["base"].accuracy + 0.1

    def test_autofeat_at_least_matches_arda(self, results):
        assert results["autofeat"].accuracy >= results["arda"].accuracy - 0.02

    def test_autofeat_selection_faster_than_arda(self, results):
        assert (
            results["arda"].feature_selection_seconds
            > 5 * results["autofeat"].feature_selection_seconds
        )

    def test_autofeat_explores_transitively(self, results):
        assert results["autofeat"].n_joined_tables >= 2


class TestDataLakeSettingShape:
    def test_autofeat_survives_noisy_graph(self, bundle, datalake, results):
        lake_result = run_autofeat(
            datalake, bundle.base_name, bundle.label_column, "lightgbm", seed=1
        )
        assert lake_result.accuracy > results["base"].accuracy + 0.1

    def test_discovery_prunes_spurious_joins(self, bundle, datalake):
        autofeat = AutoFeat(datalake, AutoFeatConfig(seed=1))
        discovery = autofeat.discover(bundle.base_name, bundle.label_column)
        assert discovery.n_joins_pruned_similarity + discovery.n_paths_pruned_quality > 0


class TestStability:
    def test_repeat_run_is_identical(self, bundle, benchmark_graph):
        a = run_autofeat(
            benchmark_graph, bundle.base_name, bundle.label_column, "lightgbm", seed=2
        )
        b = run_autofeat(
            benchmark_graph, bundle.base_name, bundle.label_column, "lightgbm", seed=2
        )
        assert a.accuracy == b.accuracy
        assert a.n_joined_tables == b.n_joined_tables
