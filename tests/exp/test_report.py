"""Regression detection thresholds and report rendering."""

import pytest

from repro.exp import (
    RegressionPolicy,
    ResultsStore,
    detect_regressions,
    render_html_report,
    render_text_report,
    trial_history,
    write_html_report,
)

from .conftest import make_record

POLICY = RegressionPolicy(
    baseline_runs=3,
    slowdown_ratio=1.5,
    min_stage_delta_seconds=0.25,
    accuracy_drop=0.02,
)


@pytest.fixture
def store(tmp_path, valid_manifest):
    """Two clean baseline runs of one trial (discover=0.1s, acc=0.9)."""
    store = ResultsStore(tmp_path)
    for run in ("run-1", "run-2"):
        store.append(
            make_record("fp1", run, stage_seconds={"discover": 0.1}),
            valid_manifest,
        )
    return store


def append_current(store, valid_manifest, **kwargs):
    kwargs.setdefault("stage_seconds", {"discover": 0.1})
    record = make_record("fp1", "run-cur", **kwargs)
    store.append(record, valid_manifest if record.status == "ok" else None)
    return record


class TestDetectRegressions:
    def test_clean_run_passes(self, store, valid_manifest):
        append_current(store, valid_manifest)
        assert detect_regressions(store, "unit", policy=POLICY) == []

    def test_flags_2x_slowdown(self, store, valid_manifest):
        append_current(store, valid_manifest, stage_seconds={"discover": 0.5})
        (finding,) = detect_regressions(store, "unit", policy=POLICY)
        assert finding.kind == "stage_slowdown"
        assert finding.stage == "discover"
        assert finding.ratio == pytest.approx(5.0)
        assert "discover" in finding.describe()

    def test_absolute_floor_defeats_noise(self, store, valid_manifest):
        # 3x relative but only +0.2s absolute: under the 0.25s floor.
        append_current(store, valid_manifest, stage_seconds={"discover": 0.3})
        assert detect_regressions(store, "unit", policy=POLICY) == []

    def test_ratio_floor_defeats_slow_stage_noise(self, tmp_path, valid_manifest):
        # +0.5s absolute but only 1.05x relative: under the 1.5x ratio.
        store = ResultsStore(tmp_path)
        for run in ("run-1", "run-2"):
            store.append(
                make_record("fp1", run, stage_seconds={"discover": 10.0}),
                valid_manifest,
            )
        store.append(
            make_record("fp1", "run-cur", stage_seconds={"discover": 10.5}),
            valid_manifest,
        )
        assert detect_regressions(store, "unit", policy=POLICY) == []

    def test_accuracy_drop(self, store, valid_manifest):
        append_current(store, valid_manifest, accuracy=0.85)
        findings = detect_regressions(store, "unit", policy=POLICY)
        assert [f.kind for f in findings] == ["accuracy_drop"]
        assert findings[0].current == pytest.approx(0.85)

    def test_accuracy_within_threshold_passes(self, store, valid_manifest):
        append_current(store, valid_manifest, accuracy=0.895)
        assert detect_regressions(store, "unit", policy=POLICY) == []

    def test_new_failure(self, store, valid_manifest):
        append_current(store, valid_manifest, status="failed", accuracy=None)
        (finding,) = detect_regressions(store, "unit", policy=POLICY)
        assert finding.kind == "new_failure"
        assert "newly failed" in finding.describe()

    def test_first_run_establishes_baselines(self, tmp_path, valid_manifest):
        store = ResultsStore(tmp_path)
        store.append(
            make_record("fp1", "run-1", stage_seconds={"discover": 9.0}),
            valid_manifest,
        )
        assert detect_regressions(store, "unit", policy=POLICY) == []

    def test_baseline_window_is_bounded(self, tmp_path, valid_manifest):
        # Old slow history beyond the window must not mask a regression.
        store = ResultsStore(tmp_path)
        for i, seconds in enumerate((9.0, 0.1, 0.1, 0.1)):
            store.append(
                make_record(
                    "fp1", f"run-{i}", stage_seconds={"discover": seconds}
                ),
                valid_manifest,
            )
        store.append(
            make_record("fp1", "run-cur", stage_seconds={"discover": 0.5}),
            valid_manifest,
        )
        (finding,) = detect_regressions(store, "unit", policy=POLICY)
        assert finding.baseline == pytest.approx(0.1)
        assert finding.n_baselines == 3

    def test_explicit_run_id_ignores_later_runs(self, store, valid_manifest):
        append_current(store, valid_manifest, stage_seconds={"discover": 0.5})
        assert (
            detect_regressions(store, "unit", run_id="run-2", policy=POLICY)
            == []
        )
        assert detect_regressions(
            store, "unit", run_id="run-cur", policy=POLICY
        )

    def test_empty_store(self, tmp_path):
        assert detect_regressions(ResultsStore(tmp_path), "unit") == []


class TestRendering:
    def test_trial_history_groups_by_fingerprint(self, store):
        histories = trial_history(store, "unit")
        assert set(histories) == {"fp1"}
        assert [r.run_id for r in histories["fp1"]] == ["run-1", "run-2"]

    def test_text_report_clean(self, store, valid_manifest):
        append_current(store, valid_manifest)
        text = render_text_report(store, "unit", policy=POLICY)
        assert "credit/benchmark/AutoFeat/knn/default/seed1  [fp1]" in text
        assert "no regressions in latest run (run-cur)" in text

    def test_text_report_with_regressions(self, store, valid_manifest):
        append_current(store, valid_manifest, stage_seconds={"discover": 0.5})
        text = render_text_report(store, "unit", policy=POLICY)
        assert "REGRESSIONS in run run-cur" in text
        assert "stage_slowdown" in text

    def test_text_report_empty_store(self, tmp_path):
        text = render_text_report(ResultsStore(tmp_path), "unit")
        assert "no stored trials" in text

    def test_html_report(self, store, valid_manifest):
        append_current(store, valid_manifest, stage_seconds={"discover": 0.5})
        html_text = render_html_report(store, "unit", policy=POLICY)
        assert html_text.startswith("<!DOCTYPE html>")
        assert "1 regression(s) in run run-cur" in html_text
        assert 'class="regression"' in html_text

    def test_html_report_clean(self, store, valid_manifest):
        append_current(store, valid_manifest)
        html_text = render_html_report(store, "unit", policy=POLICY)
        assert "no regressions in latest run" in html_text
        assert 'class="regression"' not in html_text

    def test_write_html_report(self, store, valid_manifest, tmp_path):
        append_current(store, valid_manifest)
        out = write_html_report(tmp_path / "report.html", store, "unit")
        assert out.is_file()
        assert out.read_text().startswith("<!DOCTYPE html>")
