"""Append-only store: durability, validation gates and the query API."""

import json

import pytest

from repro.exp import ResultsStore, StoreError, TrialRecord

from .conftest import make_record


class TestAppend:
    def test_round_trip(self, tmp_path, valid_manifest):
        store = ResultsStore(tmp_path)
        record = make_record("fp1", "run-a")
        store.append(record, valid_manifest)
        (loaded,) = store.records()
        assert loaded == record
        assert loaded.ok

    def test_ok_requires_manifest(self, tmp_path):
        store = ResultsStore(tmp_path)
        with pytest.raises(StoreError, match="no run_manifest"):
            store.append(make_record("fp1", "run-a"), None)
        assert store.records() == []

    def test_ok_requires_valid_manifest(self, tmp_path, valid_manifest):
        store = ResultsStore(tmp_path)
        broken = dict(valid_manifest, timing={})
        with pytest.raises(StoreError):
            store.append(make_record("fp1", "run-a"), broken)

    def test_failure_records_carry_no_manifest(self, tmp_path):
        store = ResultsStore(tmp_path)
        record = make_record("fp1", "run-a", status="failed", accuracy=None)
        store.append(record, None)
        (loaded,) = store.records()
        assert loaded.status == "failed"
        assert store.load_manifest(loaded) is None

    def test_unknown_status_rejected(self, tmp_path):
        store = ResultsStore(tmp_path)
        with pytest.raises(StoreError, match="unknown trial status"):
            store.append(make_record("fp1", "run-a", status="meh"), None)

    def test_append_only(self, tmp_path, valid_manifest):
        store = ResultsStore(tmp_path)
        store.append(make_record("fp1", "run-a"), valid_manifest)
        store.append(make_record("fp1", "run-b"), valid_manifest)
        assert [r.run_id for r in store.records()] == ["run-a", "run-b"]

    def test_manifest_stored_out_of_line(self, tmp_path, valid_manifest):
        store = ResultsStore(tmp_path)
        record = store.append(make_record("fp1", "run-a"), valid_manifest)
        path = tmp_path / "trials" / "fp1" / "run-a.manifest.json"
        assert path.is_file()
        assert store.load_manifest(record) == valid_manifest


class TestCorruptionTolerance:
    def test_torn_final_line_skipped(self, tmp_path, valid_manifest):
        store = ResultsStore(tmp_path)
        store.append(make_record("fp1", "run-a"), valid_manifest)
        with open(store.index_path, "a") as fh:
            fh.write('{"fingerprint": "fp2", "truncat')
        assert len(store.records()) == 1
        assert store.corrupt_lines == 1

    def test_blank_lines_ignored(self, tmp_path, valid_manifest):
        store = ResultsStore(tmp_path)
        store.append(make_record("fp1", "run-a"), valid_manifest)
        with open(store.index_path, "a") as fh:
            fh.write("\n\n")
        assert len(store.records()) == 1
        assert store.corrupt_lines == 0

    def test_missing_index_is_empty(self, tmp_path):
        store = ResultsStore(tmp_path / "never-written")
        assert store.records() == []
        assert store.completed_fingerprints() == set()
        assert store.latest_run_id() is None


class TestQuery:
    @pytest.fixture
    def store(self, tmp_path, valid_manifest) -> ResultsStore:
        store = ResultsStore(tmp_path)
        store.append(
            make_record("fp1", "run-a", seed=1, created_unix=100.0),
            valid_manifest,
        )
        store.append(
            make_record("fp2", "run-a", seed=2, created_unix=200.0),
            valid_manifest,
        )
        store.append(
            make_record(
                "fp1",
                "run-b",
                status="timeout",
                accuracy=None,
                created_unix=300.0,
            ),
            None,
        )
        return store

    def test_filter_by_identity(self, store):
        assert len(store.query(dataset="credit")) == 3
        assert len(store.query(dataset="steel")) == 0
        assert [r.fingerprint for r in store.query(seed=2)] == ["fp2"]
        assert len(store.query(fingerprint="fp1")) == 2
        assert len(store.query(run_id="run-a")) == 2
        assert len(store.query(config_hash="cafe")) == 3

    def test_filter_by_status(self, store):
        assert [r.run_id for r in store.query(status="timeout")] == ["run-b"]

    def test_time_range(self, store):
        assert len(store.query(since=150.0)) == 2
        assert len(store.query(until=150.0)) == 1
        assert [r.fingerprint for r in store.query(since=150.0, until=250.0)] == [
            "fp2"
        ]

    def test_completed_fingerprints(self, store):
        # fp1 timed out later but its earlier ok record still completes it.
        assert store.completed_fingerprints() == {"fp1", "fp2"}
        assert store.completed_fingerprints(experiment="other") == set()

    def test_run_ids_first_appearance_order(self, store):
        assert store.run_ids() == ["run-a", "run-b"]
        assert store.latest_run_id() == "run-b"

    def test_describe_mentions_counts(self, store):
        text = store.describe()
        assert "3 records" in text
        assert "2 ok" in text
        assert "2 runs" in text


class TestRecordSerialisation:
    def test_dict_round_trip(self):
        record = make_record("fp1", "run-a", stage_seconds={"discover": 1.5})
        again = TrialRecord.from_dict(json.loads(json.dumps(record.as_dict())))
        assert again == record

    def test_forward_compatible_defaults(self):
        sparse = TrialRecord.from_dict(
            {
                "fingerprint": "fp",
                "run_id": "r",
                "experiment": "e",
                "dataset": "credit",
            }
        )
        assert sparse.status == "failed"
        assert sparse.stage_seconds == {}
        assert sparse.accuracy is None
