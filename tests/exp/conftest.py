"""Shared fixtures for the experiment-orchestration suites."""

import pytest

from repro.exp import ExperimentSpec, TrialRecord
from repro.obs import build_manifest


def spec_dict(**overrides) -> dict:
    """A minimal valid spec dict (credit × 1 config × 2 seeds on knn)."""
    data = {
        "name": "unit",
        "datasets": ["credit"],
        "models": ["knn"],
        "methods": ["AutoFeat"],
        "configs": [
            {"name": "default", "overrides": {"sample_size": 300, "top_k": 2}}
        ],
        "seeds": [1, 2],
        "timeout_seconds": 120,
        "failure_policy": "skip_and_record",
        "workers": 0,
    }
    data.update(overrides)
    return data


def make_record(
    fingerprint: str,
    run_id: str,
    *,
    status: str = "ok",
    stage_seconds: dict | None = None,
    accuracy: float | None = 0.9,
    seed: int = 1,
    experiment: str = "unit",
    created_unix: float = 0.0,
) -> TrialRecord:
    return TrialRecord(
        fingerprint=fingerprint,
        run_id=run_id,
        experiment=experiment,
        dataset="credit",
        setting="benchmark",
        method="AutoFeat",
        model="knn",
        config_name="default",
        config_hash="cafe",
        seed=seed,
        status=status,
        created_unix=created_unix,
        wall_seconds=0.1,
        accuracy=accuracy,
        stage_seconds=dict(stage_seconds or {}),
    )


@pytest.fixture(scope="session")
def valid_manifest() -> dict:
    """A schema-valid manifest dict with a synthesised one-stage tree."""
    return build_manifest("trial", wall_seconds=0.01, seed=1).as_dict()


@pytest.fixture
def unit_spec() -> ExperimentSpec:
    return ExperimentSpec.from_dict(spec_dict())
