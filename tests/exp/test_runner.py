"""Runner semantics: execution, resume, failure policies and timeouts.

The real-trial tests run the smallest feasible matrix (credit on knn,
sample_size=300) inline; the policy tests monkeypatch the worker entry
point so every branch is exercised without touching the pipeline.
"""

import pytest

from repro.engine.faults import ErrorBudgetExceeded
from repro.exp import (
    ExperimentSpec,
    ResultsStore,
    TrialFailed,
    new_run_id,
    run_experiment,
)
from repro.exp import runner as runner_module

from .conftest import spec_dict


def ok_payload(valid_manifest: dict, *, wall: float = 0.01) -> dict:
    return {
        "status": "ok",
        "wall_seconds": wall,
        "accuracy": 0.9,
        "row": {},
        "manifest": valid_manifest,
        "stage_seconds": {"trial": wall},
    }


FAILED_PAYLOAD = {
    "status": "failed",
    "error_kind": "RuntimeError",
    "error": "boom",
    "wall_seconds": 0.0,
}


class TestNewRunId:
    def test_unique_and_prefixed(self):
        a, b = new_run_id(), new_run_id("exp")
        assert a != new_run_id()
        assert a.startswith("run-")
        assert b.startswith("exp-")


class TestRealTrials:
    """End-to-end on the real pipeline (smallest matrix, inline)."""

    def test_inline_run_and_resume(self, tmp_path, unit_spec):
        store = ResultsStore(tmp_path)
        result = run_experiment(unit_spec, store, run_id="first")
        assert result.ok
        assert (result.n_planned, result.n_executed, result.n_ok) == (2, 2, 2)
        assert result.n_skipped_resume == 0
        assert store.completed_fingerprints() == {
            t.fingerprint for t in unit_spec.trials()
        }
        for record in result.records:
            assert record.accuracy is not None
            assert record.stage_seconds
            assert store.load_manifest(record) is not None

        resumed = run_experiment(unit_spec, store, resume=True, run_id="second")
        assert resumed.n_skipped_resume == 2
        assert resumed.n_executed == 0

    def test_kill_and_resume_by_fingerprint(self, tmp_path, unit_spec):
        store = ResultsStore(tmp_path)
        killed = run_experiment(
            unit_spec, store, run_id="killed", max_trials=1
        )
        assert killed.n_executed == 1
        resumed = run_experiment(
            unit_spec, store, resume=True, run_id="resumed"
        )
        assert resumed.n_skipped_resume == 1
        assert resumed.n_executed == 1
        # The resumed trial is exactly the one the kill left unfinished.
        executed = {r.fingerprint for r in killed.records} | {
            r.fingerprint for r in resumed.records
        }
        assert executed == {t.fingerprint for t in unit_spec.trials()}

    def test_injection_does_not_change_fingerprints(self, tmp_path, unit_spec):
        store = ResultsStore(tmp_path)
        run_experiment(
            unit_spec,
            store,
            run_id="slow",
            max_trials=1,
            inject_hop_latency=0.01,
        )
        (record,) = store.records()
        assert record.fingerprint == unit_spec.trials()[0].fingerprint


class TestFailurePolicies:
    def spec(self, **overrides) -> ExperimentSpec:
        return ExperimentSpec.from_dict(spec_dict(**overrides))

    def test_fail_fast_raises(self, tmp_path, monkeypatch):
        monkeypatch.setattr(
            runner_module, "_execute_trial", lambda payload: dict(FAILED_PAYLOAD)
        )
        store = ResultsStore(tmp_path)
        with pytest.raises(TrialFailed, match="boom"):
            run_experiment(self.spec(failure_policy="fail_fast"), store)
        # fail_fast stops before recording the failing trial.
        assert store.records() == []

    def test_skip_and_record_keeps_going(self, tmp_path, monkeypatch):
        monkeypatch.setattr(
            runner_module, "_execute_trial", lambda payload: dict(FAILED_PAYLOAD)
        )
        store = ResultsStore(tmp_path)
        result = run_experiment(self.spec(), store)
        assert not result.ok
        assert result.n_failed == 2
        assert [r.status for r in store.records()] == ["failed", "failed"]
        assert not result.failure_report.ok
        assert len(result.failure_report.records) == 2

    def test_retry_then_success(self, tmp_path, monkeypatch, valid_manifest):
        calls = {"n": 0}

        def flaky(payload):
            calls["n"] += 1
            if calls["n"] == 1:
                return dict(FAILED_PAYLOAD)
            return ok_payload(valid_manifest)

        monkeypatch.setattr(runner_module, "_execute_trial", flaky)
        store = ResultsStore(tmp_path)
        result = run_experiment(
            self.spec(failure_policy="retry", max_retries=2, seeds=[1]), store
        )
        assert result.ok
        assert result.n_ok == 1
        (record,) = store.records()
        assert record.retries == 1

    def test_retry_exhaustion_records_failure(self, tmp_path, monkeypatch):
        calls = {"n": 0}

        def always_fails(payload):
            calls["n"] += 1
            return dict(FAILED_PAYLOAD)

        monkeypatch.setattr(runner_module, "_execute_trial", always_fails)
        store = ResultsStore(tmp_path)
        result = run_experiment(
            self.spec(failure_policy="retry", max_retries=2, seeds=[1]), store
        )
        assert calls["n"] == 3  # 1 attempt + 2 retries
        assert result.n_failed == 1
        (record,) = store.records()
        assert record.retries == 2

    def test_error_budget_bounds_degradation(self, tmp_path, monkeypatch):
        monkeypatch.setattr(
            runner_module, "_execute_trial", lambda payload: dict(FAILED_PAYLOAD)
        )
        store = ResultsStore(tmp_path)
        with pytest.raises(ErrorBudgetExceeded):
            run_experiment(
                self.spec(error_budget=1, seeds=[1, 2, 3]), store
            )
        # Every failure up to and including the budget breach was stored.
        assert len(store.records()) == 2

    def test_infeasible_recorded_and_resumable(self, tmp_path, monkeypatch):
        monkeypatch.setattr(
            runner_module,
            "_execute_trial",
            lambda payload: {"status": "infeasible", "wall_seconds": 0.0},
        )
        store = ResultsStore(tmp_path)
        spec = self.spec(seeds=[1])
        result = run_experiment(spec, store, run_id="first")
        assert result.ok
        assert result.n_infeasible == 1
        # Infeasible is deterministic: resume must not re-run it.
        resumed = run_experiment(spec, store, resume=True, run_id="again")
        assert resumed.n_skipped_resume == 1
        assert resumed.n_executed == 0


class TestTimeouts:
    def test_inline_post_hoc_timeout(self, tmp_path, monkeypatch, valid_manifest):
        monkeypatch.setattr(
            runner_module,
            "_execute_trial",
            lambda payload: ok_payload(valid_manifest, wall=5.0),
        )
        store = ResultsStore(tmp_path)
        spec = ExperimentSpec.from_dict(spec_dict(seeds=[1]))
        result = run_experiment(spec, store, timeout_seconds=0.5)
        assert result.n_timeout == 1
        assert not result.ok
        (record,) = store.records()
        assert record.status == "timeout"
        assert "exceeded 0.5s" in record.error
        assert store.load_manifest(record) is None


class TestPooledExecution:
    def test_pool_matches_inline(self, tmp_path, unit_spec):
        store = ResultsStore(tmp_path)
        result = run_experiment(unit_spec, store, workers=2, run_id="pooled")
        assert result.ok
        assert result.n_ok == 2
        assert store.completed_fingerprints() == {
            t.fingerprint for t in unit_spec.trials()
        }
