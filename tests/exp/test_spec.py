"""Spec loading, validation, trial expansion and fingerprint semantics."""

import json

import pytest

from repro.exp import (
    ConfigVariant,
    ExperimentSpec,
    RegressionPolicy,
    SpecError,
    TrialSpec,
    validate_spec,
)

from .conftest import spec_dict


class TestValidateSpec:
    def test_valid_spec_has_no_errors(self):
        assert validate_spec(spec_dict()) == []

    def test_structural_errors_short_circuit(self):
        errors = validate_spec({"name": "x"})
        assert errors
        assert all(e.startswith("spec") for e in errors)

    def test_unknown_dataset(self):
        errors = validate_spec(spec_dict(datasets=["credit", "nope"]))
        assert any("unknown dataset 'nope'" in e for e in errors)

    def test_unknown_setting(self):
        errors = validate_spec(spec_dict(setting="prod"))
        assert any("spec.setting" in e for e in errors)

    def test_unknown_method_and_model(self):
        errors = validate_spec(spec_dict(methods=["Magic"], models=["gpt"]))
        assert any("unknown method 'Magic'" in e for e in errors)
        assert any("unknown model 'gpt'" in e for e in errors)

    def test_empty_axes(self):
        errors = validate_spec(spec_dict(datasets=[], configs=[], seeds=[]))
        assert any("at least one dataset" in e for e in errors)
        assert any("at least one config" in e for e in errors)
        assert any("at least one seed" in e for e in errors)

    def test_unknown_failure_policy(self):
        errors = validate_spec(spec_dict(failure_policy="yolo"))
        assert any("failure_policy" in e for e in errors)

    def test_duplicate_config_names(self):
        configs = [{"name": "a"}, {"name": "a"}]
        errors = validate_spec(spec_dict(configs=configs))
        assert any("duplicate config name 'a'" in e for e in errors)

    def test_seed_rejected_in_overrides(self):
        configs = [{"name": "a", "overrides": {"seed": 3}}]
        errors = validate_spec(spec_dict(configs=configs))
        assert any("seeds axis" in e for e in errors)

    def test_unknown_config_field(self):
        configs = [{"name": "a", "overrides": {"warp_factor": 9}}]
        errors = validate_spec(spec_dict(configs=configs))
        assert any("unknown AutoFeatConfig field" in e for e in errors)

    def test_from_dict_raises_with_every_error(self):
        data = spec_dict(datasets=["nope"], failure_policy="yolo")
        with pytest.raises(SpecError) as exc:
            ExperimentSpec.from_dict(data)
        assert "nope" in str(exc.value)
        assert "yolo" in str(exc.value)


class TestTrialExpansion:
    def test_matrix_size_and_order(self):
        spec = ExperimentSpec.from_dict(
            spec_dict(
                datasets=["credit", "steel"],
                configs=[{"name": "a"}, {"name": "b"}],
                seeds=[1, 2],
            )
        )
        trials = spec.trials()
        assert len(trials) == spec.n_trials == 8
        # dataset -> config -> method -> model -> seed expansion order.
        assert [(t.dataset, t.config_name, t.seed) for t in trials[:4]] == [
            ("credit", "a", 1),
            ("credit", "a", 2),
            ("credit", "b", 1),
            ("credit", "b", 2),
        ]
        assert all(t.dataset == "steel" for t in trials[4:])

    def test_defaults(self):
        spec = ExperimentSpec.from_dict(
            {
                "name": "d",
                "datasets": ["credit"],
                "configs": [{"name": "a"}],
                "seeds": [1],
            }
        )
        assert spec.setting == "benchmark"
        assert spec.models == ("lightgbm",)
        assert spec.methods == ("AutoFeat",)
        assert spec.failure_policy == "skip_and_record"
        assert spec.regression == RegressionPolicy()

    def test_label_is_human_readable(self, unit_spec):
        trial = unit_spec.trials()[0]
        assert trial.label == "credit/benchmark/AutoFeat/knn/default/seed1"


class TestFingerprints:
    def trial(self, **overrides) -> TrialSpec:
        base = dict(
            experiment="unit",
            dataset="credit",
            setting="benchmark",
            method="AutoFeat",
            model="knn",
            config_name="default",
            overrides={"top_k": 2},
            seed=1,
        )
        base.update(overrides)
        return TrialSpec(**base)

    def test_stable_across_runs(self):
        assert self.trial().fingerprint == self.trial().fingerprint

    def test_excludes_experiment_name_and_config_label(self):
        renamed = self.trial(experiment="other", config_name="renamed")
        assert renamed.fingerprint == self.trial().fingerprint

    def test_sensitive_to_content(self):
        base = self.trial().fingerprint
        assert self.trial(seed=2).fingerprint != base
        assert self.trial(overrides={"top_k": 3}).fingerprint != base
        assert self.trial(dataset="steel").fingerprint != base
        assert self.trial(setting="datalake").fingerprint != base

    def test_config_hash_is_overrides_only(self):
        assert (
            self.trial(seed=9).config_hash == self.trial(seed=1).config_hash
        )
        assert ConfigVariant("x", {"top_k": 2}).config_hash == self.trial().config_hash

    def test_round_trips_through_dict(self):
        trial = self.trial()
        again = TrialSpec.from_dict(trial.as_dict())
        assert again == trial
        assert again.fingerprint == trial.fingerprint


class TestBuildConfig:
    def test_overrides_and_seed_applied(self, unit_spec):
        trial = unit_spec.trials()[1]
        config = trial.build_config()
        assert config.sample_size == 300
        assert config.top_k == 2
        assert config.seed == 2

    def test_extras_win_without_touching_fingerprint(self, unit_spec):
        trial = unit_spec.trials()[0]
        before = trial.fingerprint
        config = trial.build_config(hop_latency_seconds=0.5)
        assert config.hop_latency_seconds == 0.5
        assert trial.fingerprint == before


class TestFromFile:
    def test_json_file(self, tmp_path):
        path = tmp_path / "exp.json"
        path.write_text(json.dumps(spec_dict()))
        spec = ExperimentSpec.from_file(path)
        assert spec.name == "unit"
        assert spec.n_trials == 2

    def test_toml_file_matches_json(self, tmp_path):
        toml = tmp_path / "exp.toml"
        toml.write_text(
            "\n".join(
                [
                    'name = "unit"',
                    'datasets = ["credit"]',
                    'models = ["knn"]',
                    'methods = ["AutoFeat"]',
                    "seeds = [1, 2]",
                    "timeout_seconds = 120",
                    'failure_policy = "skip_and_record"',
                    "workers = 0",
                    "[[configs]]",
                    'name = "default"',
                    "[configs.overrides]",
                    "sample_size = 300",
                    "top_k = 2",
                ]
            )
        )
        json_path = tmp_path / "exp.json"
        json_path.write_text(json.dumps(spec_dict()))
        assert ExperimentSpec.from_file(toml) == ExperimentSpec.from_file(json_path)

    def test_bad_json_raises_spec_error(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(SpecError, match="not valid JSON"):
            ExperimentSpec.from_file(path)

    def test_non_object_rejected(self, tmp_path):
        path = tmp_path / "list.json"
        path.write_text("[1, 2]")
        with pytest.raises(SpecError, match="must be a JSON/TOML object"):
            ExperimentSpec.from_file(path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(SpecError, match="cannot read spec file"):
            ExperimentSpec.from_file(tmp_path / "absent.json")

    def test_checked_in_smoke_spec_loads(self):
        from repro.exp.store import DEFAULT_STORE_ROOT

        repo = DEFAULT_STORE_ROOT.parents[2]
        spec = ExperimentSpec.from_file(repo / "experiments" / "smoke.json")
        assert spec.name == "smoke"
        assert spec.n_trials == 8
