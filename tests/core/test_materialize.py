"""Unit tests for join-path materialisation."""

import pytest

from repro.core import apply_hop, materialize_path, qualified, source_column_name
from repro.dataframe import Table
from repro.errors import JoinError
from repro.graph import DatasetRelationGraph, JoinPath, KFKConstraint


@pytest.fixture
def drg():
    base = Table({"id": [1, 2, 3], "x": [1.0, 2.0, 3.0]}, name="base")
    mid = Table({"id": [1, 2], "fk": [10, 20], "m": [5.0, 6.0]}, name="mid")
    leaf = Table({"fk": [10, 20, 30], "z": [7.0, 8.0, 9.0]}, name="leaf")
    return DatasetRelationGraph.from_constraints(
        [base, mid, leaf],
        [
            KFKConstraint("base", "id", "mid", "id"),
            KFKConstraint("mid", "fk", "leaf", "fk"),
        ],
    )


def path_of(drg, *hops):
    path = JoinPath("base")
    for source, target in hops:
        edge = drg.best_join_options(source, target)[0]
        path = path.extend(edge)
    return path


class TestHelpers:
    def test_qualified(self):
        assert qualified("t", "c") == "t.c"

    def test_source_column_base(self, drg):
        edge = drg.best_join_options("base", "mid")[0]
        assert source_column_name(edge, "base") == "id"

    def test_source_column_transitive(self, drg):
        edge = drg.best_join_options("mid", "leaf")[0]
        assert source_column_name(edge, "base") == "mid.fk"


class TestApplyHop:
    def test_contributes_qualified_columns(self, drg):
        edge = drg.best_join_options("base", "mid")[0]
        joined, contributed = apply_hop(drg.table("base"), drg, edge, "base", 0)
        assert set(contributed) == {"mid.id", "mid.fk", "mid.m"}
        assert joined.n_rows == 3

    def test_unmatched_rows_null(self, drg):
        edge = drg.best_join_options("base", "mid")[0]
        joined, __ = apply_hop(drg.table("base"), drg, edge, "base", 0)
        assert joined.column("mid.m").to_list() == [5.0, 6.0, None]

    def test_missing_source_column_raises(self, drg):
        edge = drg.best_join_options("mid", "leaf")[0]
        with pytest.raises(JoinError):
            # base table has no 'mid.fk' column: hop out of order.
            apply_hop(drg.table("base"), drg, edge, "base", 0)


class TestMaterializePath:
    def test_two_hop_chain(self, drg):
        path = path_of(drg, ("base", "mid"), ("mid", "leaf"))
        table, contributions = materialize_path(drg, path, drg.table("base"))
        assert table.n_rows == 3
        assert len(contributions) == 2
        assert "leaf.z" in table
        # Transitive values flow through: base row 1 -> mid fk 10 -> leaf z 7.
        assert table.column("leaf.z").to_list() == [7.0, 8.0, None]

    def test_empty_path_returns_base(self, drg):
        table, contributions = materialize_path(
            drg, JoinPath("base"), drg.table("base")
        )
        assert table is drg.table("base")
        assert contributions == []

    def test_deterministic(self, drg):
        path = path_of(drg, ("base", "mid"), ("mid", "leaf"))
        a, __ = materialize_path(drg, path, drg.table("base"), seed=4)
        b, __ = materialize_path(drg, path, drg.table("base"), seed=4)
        assert a == b
