"""Unit tests for the provenance explain report."""

import numpy as np
import pytest

from repro.core import AutoFeat, AutoFeatConfig, explain, explain_rows
from repro.dataframe import Table
from repro.engine import FaultInjector
from repro.graph import DatasetRelationGraph, KFKConstraint


def chain_lake(sparse=False):
    """base -> mid -> deep chain; optionally a half-coverage side table."""
    rng = np.random.default_rng(7)
    n = 500
    ids = np.arange(n)
    k2 = rng.permutation(n) + 9000
    k3 = rng.permutation(n) + 50000
    signal = rng.normal(0, 1, n)
    label = ((signal + rng.normal(0, 0.4, n)) > 0).astype(int)
    base = Table(
        {"id": ids, "k2": k2, "w": rng.normal(0, 1, n), "label": label},
        name="base",
    )
    mid = Table(
        {"k2": k2, "m": signal * 0.5 + rng.normal(0, 0.6, n), "k3": k3},
        name="mid",
    )
    deep = Table({"k3": k3, "signal": signal}, name="deep")
    tables = [base, mid, deep]
    constraints = [
        KFKConstraint("base", "k2", "mid", "k2"),
        KFKConstraint("mid", "k3", "deep", "k3"),
    ]
    if sparse:
        # only half of base's ids resolve -> join completeness ~0.5
        half = Table(
            {"id": ids[: n // 2], "h": rng.normal(0, 1, n // 2)}, name="half"
        )
        tables.append(half)
        constraints.append(KFKConstraint("base", "id", "half", "id"))
    return DatasetRelationGraph.from_constraints(tables, constraints)


@pytest.fixture(scope="module")
def result():
    return AutoFeat(chain_lake(), AutoFeatConfig(sample_size=400, seed=1)).augment(
        "base", "label"
    )


class TestExplainRows:
    def test_one_row_per_selected_feature(self, result):
        rows = explain_rows(result)
        assert {r["feature"] for r in rows} == set(
            result.best.ranked.selected_features
        )

    def test_origin_and_hops(self, result):
        rows = {r["feature"]: r for r in explain_rows(result)}
        assert rows["deep.signal"]["origin"] == "deep"
        assert rows["deep.signal"]["hops"] == 2
        assert rows["mid.m"]["hops"] == 1

    def test_route_rendered(self, result):
        rows = {r["feature"]: r for r in explain_rows(result)}
        assert "mid.k3 -> deep.k3" in rows["deep.signal"]["route"]

    def test_last_hop_scores_attached(self, result):
        rows = {r["feature"]: r for r in explain_rows(result)}
        # The winning path's last hop is deep; its feature carries scores.
        assert rows["deep.signal"]["redundancy"] != ""

    def test_empty_result(self):
        base = Table(
            {"x": np.random.default_rng(0).normal(0, 1, 60), "label": [0, 1] * 30},
            name="base",
        )
        drg = DatasetRelationGraph.from_constraints([base], [])
        empty = AutoFeat(drg, AutoFeatConfig(sample_size=30, seed=0)).augment(
            "base", "label"
        )
        assert explain_rows(empty) == []
        assert "no features were added" in explain(empty)


class TestExplainText:
    def test_includes_summary_and_table(self, result):
        text = explain(result)
        assert "best accuracy" in text
        assert "feature provenance" in text
        assert "deep.signal" in text


class TestExplainDegradedPaths:
    """The report must stay coherent when paths are pruned or fail."""

    def test_quality_pruned_table_absent_from_provenance(self):
        drg = chain_lake(sparse=True)
        result = AutoFeat(
            drg, AutoFeatConfig(sample_size=400, seed=1, tau=0.65)
        ).augment("base", "label")
        # the half-coverage join is below tau and was pruned on quality
        assert result.discovery.n_paths_pruned_quality > 0
        rows = explain_rows(result)
        assert rows, "the complete chain must still win"
        assert all(r["origin"] != "half" for r in rows)
        text = explain(result)
        assert "half.h" not in text
        assert "pruned" in text  # summary reports the pruning bookkeeping

    def test_all_paths_failed_still_renders(self):
        injector = FaultInjector(failure_probability=1.0, seed=0)
        result = AutoFeat(
            chain_lake(),
            AutoFeatConfig(
                sample_size=400, seed=1, failure_policy="skip_and_record"
            ),
            fault_injector=injector,
        ).augment("base", "label")
        # every hop faulted: no path survives, but failures are on record
        assert result.best is None
        assert result.combined_failure_report.n_failures > 0
        assert explain_rows(result) == []
        text = explain(result)
        assert "no features were added" in text
        assert "failures" in text

    def test_partial_failure_explains_surviving_path(self):
        # fault exactly the hops into "half"; the chain path is untouched
        injector = FaultInjector(seed=0)
        injector.fault_kind = (
            lambda edge: "failure" if edge.target == "half" else None
        )
        result = AutoFeat(
            chain_lake(sparse=True),
            AutoFeatConfig(
                sample_size=400, seed=1, failure_policy="skip_and_record"
            ),
            fault_injector=injector,
        ).augment("base", "label")
        assert result.combined_failure_report.n_failures > 0
        rows = explain_rows(result)
        assert any(r["feature"] == "deep.signal" for r in rows)
        assert all(r["origin"] != "half" for r in rows)
