"""Unit tests for the provenance explain report."""

import numpy as np
import pytest

from repro.core import AutoFeat, AutoFeatConfig, explain, explain_rows
from repro.dataframe import Table
from repro.graph import DatasetRelationGraph, KFKConstraint


@pytest.fixture(scope="module")
def result():
    rng = np.random.default_rng(7)
    n = 500
    ids = np.arange(n)
    k2 = rng.permutation(n) + 9000
    k3 = rng.permutation(n) + 50000
    signal = rng.normal(0, 1, n)
    label = ((signal + rng.normal(0, 0.4, n)) > 0).astype(int)
    base = Table(
        {"id": ids, "k2": k2, "w": rng.normal(0, 1, n), "label": label},
        name="base",
    )
    mid = Table(
        {"k2": k2, "m": signal * 0.5 + rng.normal(0, 0.6, n), "k3": k3},
        name="mid",
    )
    deep = Table({"k3": k3, "signal": signal}, name="deep")
    drg = DatasetRelationGraph.from_constraints(
        [base, mid, deep],
        [
            KFKConstraint("base", "k2", "mid", "k2"),
            KFKConstraint("mid", "k3", "deep", "k3"),
        ],
    )
    return AutoFeat(drg, AutoFeatConfig(sample_size=400, seed=1)).augment(
        "base", "label"
    )


class TestExplainRows:
    def test_one_row_per_selected_feature(self, result):
        rows = explain_rows(result)
        assert {r["feature"] for r in rows} == set(
            result.best.ranked.selected_features
        )

    def test_origin_and_hops(self, result):
        rows = {r["feature"]: r for r in explain_rows(result)}
        assert rows["deep.signal"]["origin"] == "deep"
        assert rows["deep.signal"]["hops"] == 2
        assert rows["mid.m"]["hops"] == 1

    def test_route_rendered(self, result):
        rows = {r["feature"]: r for r in explain_rows(result)}
        assert "mid.k3 -> deep.k3" in rows["deep.signal"]["route"]

    def test_last_hop_scores_attached(self, result):
        rows = {r["feature"]: r for r in explain_rows(result)}
        # The winning path's last hop is deep; its feature carries scores.
        assert rows["deep.signal"]["redundancy"] != ""

    def test_empty_result(self):
        base = Table(
            {"x": np.random.default_rng(0).normal(0, 1, 60), "label": [0, 1] * 30},
            name="base",
        )
        drg = DatasetRelationGraph.from_constraints([base], [])
        empty = AutoFeat(drg, AutoFeatConfig(sample_size=30, seed=0)).augment(
            "base", "label"
        )
        assert explain_rows(empty) == []
        assert "no features were added" in explain(empty)


class TestExplainText:
    def test_includes_summary_and_table(self, result):
        text = explain(result)
        assert "best accuracy" in text
        assert "feature provenance" in text
        assert "deep.signal" in text
