"""Unit tests for the dynamic hyper-parameter tuner (future-work extension)."""

import numpy as np
import pytest

from repro.core import AutoFeatConfig, AutoFeatTuner
from repro.dataframe import Table
from repro.graph import DatasetRelationGraph, KFKConstraint


@pytest.fixture(scope="module")
def drg():
    rng = np.random.default_rng(21)
    n = 400
    ids = np.arange(n)
    signal = rng.normal(0, 1, n)
    label = ((signal + rng.normal(0, 0.4, n)) > 0).astype(int)
    base = Table(
        {"id": ids, "weak": rng.normal(0, 1, n), "label": label}, name="base"
    )
    good = Table({"id": ids, "signal": signal}, name="good")
    # A half-matching satellite, so tau actually changes what survives.
    partial = Table(
        {"id": ids[: n // 2], "extra": rng.normal(0, 1, n // 2)}, name="partial"
    )
    return DatasetRelationGraph.from_constraints(
        [base, good, partial],
        [
            KFKConstraint("base", "id", "good", "id"),
            KFKConstraint("base", "id", "partial", "id"),
        ],
    )


@pytest.fixture(scope="module")
def outcome(drg):
    tuner = AutoFeatTuner(
        drg,
        base_config=AutoFeatConfig(sample_size=300, seed=1),
        taus=(0.4, 0.9),
        kappas=(3, 10),
    )
    return tuner.tune("base", "label")


class TestTuner:
    def test_all_grid_points_evaluated(self, outcome):
        assert len(outcome.trials) == 4
        assert {(t.tau, t.kappa) for t in outcome.trials} == {
            (0.4, 3),
            (0.4, 10),
            (0.9, 3),
            (0.9, 10),
        }

    def test_best_trial_is_grid_max(self, outcome):
        assert outcome.best_trial.accuracy == max(
            t.accuracy for t in outcome.trials
        )

    def test_best_config_from_grid(self, outcome):
        assert outcome.best_config.tau in (0.4, 0.9)
        assert outcome.best_config.kappa in (3, 10)

    def test_best_config_restores_top_k(self, outcome):
        assert outcome.best_config.top_k == AutoFeatConfig().top_k

    def test_final_result_found_signal(self, outcome):
        assert outcome.best_result.accuracy > 0.75
        assert outcome.best_result.best is not None

    def test_tau_changes_surviving_paths(self, outcome):
        lenient = [t for t in outcome.trials if t.tau == 0.4]
        strict = [t for t in outcome.trials if t.tau == 0.9]
        # Strict tau prunes the half-matching satellite's path.
        assert min(t.n_paths for t in strict) < max(t.n_paths for t in lenient)

    def test_timing_recorded(self, outcome):
        assert outcome.total_seconds > 0
        assert all(t.feature_selection_seconds >= 0 for t in outcome.trials)
