"""Unit tests for AutoFeatConfig validation and presets."""

import pytest

from repro.core import AutoFeatConfig
from repro.errors import ConfigError


class TestValidation:
    def test_defaults_are_paper_values(self):
        config = AutoFeatConfig()
        assert config.tau == 0.65
        assert config.kappa == 15
        assert config.relevance_metric == "spearman"
        assert config.redundancy_method == "mrmr"
        assert config.traversal == "bfs"

    @pytest.mark.parametrize("tau", [-0.1, 1.1])
    def test_tau_out_of_range(self, tau):
        with pytest.raises(ConfigError):
            AutoFeatConfig(tau=tau)

    def test_tau_boundaries_ok(self):
        AutoFeatConfig(tau=0.0)
        AutoFeatConfig(tau=1.0)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"kappa": 0},
            {"top_k": 0},
            {"max_path_length": 0},
            {"sample_size": 5},
            {"relevance_metric": "chi2"},
            {"redundancy_method": "lasso"},
            {"traversal": "random"},
        ],
    )
    def test_invalid_values_raise(self, kwargs):
        with pytest.raises(ConfigError):
            AutoFeatConfig(**kwargs)

    def test_relief_accepted_as_relevance(self):
        AutoFeatConfig(relevance_metric="relief")


class TestOverridesAndAblations:
    def test_with_overrides(self):
        config = AutoFeatConfig().with_overrides(tau=0.8, kappa=5)
        assert config.tau == 0.8
        assert config.kappa == 5

    def test_with_overrides_validates(self):
        with pytest.raises(ConfigError):
            AutoFeatConfig().with_overrides(tau=2.0)

    def test_original_unchanged(self):
        config = AutoFeatConfig()
        config.with_overrides(tau=0.9)
        assert config.tau == 0.65

    def test_ablation_spearman_mrmr_is_default(self):
        assert AutoFeatConfig.ablation("spearman-mrmr") == AutoFeatConfig()

    def test_ablation_jmi(self):
        assert AutoFeatConfig.ablation("spearman-jmi").redundancy_method == "jmi"

    def test_ablation_pearson(self):
        assert AutoFeatConfig.ablation("pearson-mrmr").relevance_metric == "pearson"

    def test_ablation_single_stage(self):
        assert not AutoFeatConfig.ablation("spearman-only").use_redundancy
        assert not AutoFeatConfig.ablation("mrmr-only").use_relevance

    def test_ablation_extra_kwargs(self):
        assert AutoFeatConfig.ablation("spearman-jmi", seed=9).seed == 9

    def test_unknown_ablation_raises(self):
        with pytest.raises(ConfigError):
            AutoFeatConfig.ablation("neural")
