"""Unit tests for the discovery/augmentation result types."""

from repro.core import DiscoveryResult, RankedPath
from repro.graph import JoinPath


def make_ranked(score: float, features=("t.f",)) -> RankedPath:
    return RankedPath(
        path=JoinPath("base"),
        score=score,
        selected_features=tuple(features),
        relevance_scores=(score,),
        redundancy_scores=(score,),
        completeness=0.9,
    )


class TestRankedPath:
    def test_describe_lists_features(self):
        text = make_ranked(0.5).describe()
        assert "t.f" in text
        assert "+0.5000" in text

    def test_describe_empty_features(self):
        assert "(no new features)" in make_ranked(0.1, features=()).describe()


class TestDiscoveryResult:
    def make(self, scores):
        return DiscoveryResult(
            base_table="base",
            label_column="label",
            ranked_paths=tuple(make_ranked(s) for s in scores),
            n_paths_explored=len(scores),
            n_paths_pruned_quality=0,
            n_joins_pruned_similarity=0,
            feature_selection_seconds=0.5,
        )

    def test_top_k(self):
        result = self.make([0.9, 0.5, 0.1])
        assert [r.score for r in result.top(2)] == [0.9, 0.5]

    def test_best_path(self):
        assert self.make([0.9, 0.5]).best_path.score == 0.9

    def test_best_path_empty(self):
        assert self.make([]).best_path is None
