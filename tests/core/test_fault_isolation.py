"""End-to-end fault isolation: policies, determinism, bugfix regressions.

The fixture lake is the same diamond as ``tests/engine/test_engine.py``:
the signal table ``c`` is reachable through ``a`` and through ``b``.  With
``FaultInjector(failure_probability=0.3, seed=0)`` exactly one traversed
edge faults — ``base.a_key->a.a_key`` — so the route to the signal through
``b`` survives, which is the graceful-degradation scenario the failure
policies exist for.
"""

import numpy as np
import pytest

from repro.baselines import run_arda, run_autofeat, run_join_all, run_mab
from repro.core import AutoFeat, AutoFeatConfig, autofeat_augment
from repro.core.streaming import StreamingFeatureSelector
from repro.dataframe import Table
from repro.engine import FaultInjector, JoinEngine
from repro.errors import ErrorBudgetExceeded, InjectedFaultError, JoinError
from repro.graph import DatasetRelationGraph, KFKConstraint

FAULTY_EDGE = "base.a_key->a.a_key"


def diamond_lake(n=400, seed=3):
    rng = np.random.default_rng(seed)
    ids = np.arange(n)
    a_key = rng.permutation(n) + 1_000
    b_key = rng.permutation(n) + 5_000
    shared = rng.permutation(n) + 9_000
    signal = rng.normal(0, 1, n)
    label = ((signal + rng.normal(0, 0.3, n)) > 0).astype(int)
    base = Table(
        {
            "id": ids,
            "a_key": a_key,
            "b_key": b_key,
            "weak": rng.normal(0, 1, n),
            "label": label,
        },
        name="base",
    )
    a = Table(
        {"a_key": a_key, "shared_key": shared, "a_noise": rng.normal(0, 1, n)},
        name="a",
    )
    b = Table(
        {"b_key": b_key, "shared_key": shared, "b_noise": rng.normal(0, 1, n)},
        name="b",
    )
    c = Table({"shared_key": shared, "signal": signal}, name="c")
    return DatasetRelationGraph.from_constraints(
        [base, a, b, c],
        [
            KFKConstraint("base", "a_key", "a", "a_key"),
            KFKConstraint("base", "b_key", "b", "b_key"),
            KFKConstraint("a", "shared_key", "c", "shared_key"),
            KFKConstraint("b", "shared_key", "c", "shared_key"),
        ],
    )


@pytest.fixture(scope="module")
def drg():
    return diamond_lake()


def config(**overrides):
    return AutoFeatConfig(sample_size=200, seed=1, **overrides)


def injector(**overrides):
    kwargs = {"failure_probability": 0.3, "seed": 0}
    kwargs.update(overrides)
    return FaultInjector(**kwargs)


def all_oriented_signatures(drg):
    sigs = {}
    for table in ["base", "a", "b", "c"]:
        for neighbor in drg.neighbors(table):
            for e in drg.best_join_options(table, neighbor):
                sig = (
                    f"{e.source}.{e.source_column}->"
                    f"{e.target}.{e.target_column}"
                )
                sigs[sig] = e
    return sigs


class TestSkipAndRecord:
    def test_augment_survives_injected_faults(self, drg):
        result = autofeat_augment(
            drg,
            "base",
            "label",
            config=config(failure_policy="skip_and_record"),
            fault_injector=injector(),
        )
        # The run completes and still finds the signal via the b -> c route.
        assert result.best is not None
        assert "b.shared_key -> c.shared_key" in result.best.ranked.path.describe()
        report = result.combined_failure_report
        assert report.n_failures == 1
        record = report.records[0]
        assert record.stage == "discovery"
        assert record.error_kind == "InjectedFaultError"
        assert record.edge == FAULTY_EDGE
        assert "failures: 1 recorded" in result.summary()

    def test_report_covers_every_attempted_faulty_edge(self, drg):
        # Every edge the injector faults that the traversal attempts must
        # appear in the report — nothing is silently dropped.
        inj = injector()
        faulty = {
            sig
            for sig, edge in all_oriented_signatures(drg).items()
            if inj.fault_kind(edge) is not None
        }
        result = autofeat_augment(
            drg,
            "base",
            "label",
            config=config(failure_policy="skip_and_record"),
            fault_injector=injector(),
        )
        recorded = {r.edge for r in result.combined_failure_report.records}
        assert recorded <= faulty
        assert FAULTY_EDGE in recorded

    def test_same_seed_same_failure_report(self, drg):
        cfg = config(failure_policy="skip_and_record")
        first = AutoFeat(drg, cfg, fault_injector=injector()).discover(
            "base", "label"
        )
        second = AutoFeat(drg, cfg, fault_injector=injector()).discover(
            "base", "label"
        )
        assert first.failure_report == second.failure_report
        assert first.failure_report.n_failures == 1

    def test_error_budget_bounds_degradation(self, drg):
        with pytest.raises(ErrorBudgetExceeded):
            autofeat_augment(
                drg,
                "base",
                "label",
                config=config(
                    failure_policy="skip_and_record", error_budget=0
                ),
                fault_injector=injector(failure_probability=1.0),
            )


class TestFailFast:
    def test_first_injected_fault_propagates(self, drg):
        with pytest.raises(InjectedFaultError) as excinfo:
            autofeat_augment(
                drg,
                "base",
                "label",
                config=config(failure_policy="fail_fast"),
                fault_injector=injector(),
            )
        assert "injected join failure" in str(excinfo.value)
        assert FAULTY_EDGE in str(excinfo.value)

    def test_clean_run_matches_default_policy(self, drg):
        fast = autofeat_augment(
            drg, "base", "label", config=config(failure_policy="fail_fast")
        )
        default = autofeat_augment(drg, "base", "label", config=config())
        assert fast.accuracy == default.accuracy
        assert (
            fast.best.ranked.path.describe()
            == default.best.ranked.path.describe()
        )
        assert fast.combined_failure_report.ok
        assert default.combined_failure_report.ok


class TestRetry:
    def test_transient_fault_recovers_with_empty_report(self, drg):
        clean = autofeat_augment(drg, "base", "label", config=config())
        result = autofeat_augment(
            drg,
            "base",
            "label",
            config=config(failure_policy="retry", max_retries=2),
            fault_injector=injector(recover_after=1),
        )
        assert result.combined_failure_report.ok
        assert result.accuracy == clean.accuracy
        assert (
            result.best.ranked.path.describe()
            == clean.best.ranked.path.describe()
        )

    def test_permanent_fault_recorded_with_retry_count(self, drg):
        result = autofeat_augment(
            drg,
            "base",
            "label",
            config=config(failure_policy="retry", max_retries=2),
            fault_injector=injector(),
        )
        assert result.best is not None
        report = result.combined_failure_report
        assert report.n_failures == 1
        assert report.records[0].retries == 2


class TestTrainTopKRegression:
    """A failing full-table materialisation must not abort training."""

    def _discover(self, drg, policy):
        cfg = config(failure_policy=policy)
        autofeat = AutoFeat(drg, cfg)
        return autofeat, autofeat.discover("base", "label")

    def _poison_top_path(self, monkeypatch, discovery, top_k):
        top = discovery.top(top_k)[0].path.describe()
        original = JoinEngine.materialize_path

        def poisoned(self, path, base_table):
            if path.describe() == top:
                raise JoinError(f"materialisation failed for [{top}]")
            return original(self, path, base_table)

        monkeypatch.setattr(JoinEngine, "materialize_path", poisoned)
        return top

    def test_skip_and_record_trains_remaining_paths(self, drg, monkeypatch):
        autofeat, discovery = self._discover(drg, "skip_and_record")
        top = self._poison_top_path(
            monkeypatch, discovery, autofeat.config.top_k
        )
        result = autofeat.train_top_k(discovery)
        assert result.best is not None
        assert result.best.ranked.path.describe() != top
        assert len(result.trained) == len(discovery.top(autofeat.config.top_k)) - 1
        report = result.failure_report
        assert report.n_failures == 1
        assert report.records[0].stage == "training"
        assert report.records[0].path == top

    def test_fail_fast_still_propagates(self, drg, monkeypatch):
        autofeat, discovery = self._discover(drg, "fail_fast")
        self._poison_top_path(monkeypatch, discovery, autofeat.config.top_k)
        with pytest.raises(JoinError):
            autofeat.train_top_k(discovery)


class TestStreamingDedupeRegression:
    """R_sel is global: a name accepted once must never be accepted again."""

    def _selector(self, **overrides):
        cfg = AutoFeatConfig(**overrides)
        label = np.array([0.0, 1.0, 0.0, 1.0, 0.0, 1.0, 0.0, 1.0])
        return StreamingFeatureSelector(cfg, label), label

    def test_reoffered_batch_not_reaccepted_without_redundancy(self):
        # With both stages off (ablation), nothing downstream used to stop
        # a duplicate: the same qualified column offered by two paths was
        # accepted twice.
        selector, label = self._selector(
            use_relevance=False, use_redundancy=False
        )
        matrix = np.column_stack([label, 1.0 - label])
        names = ["t.x", "t.y"]
        first = selector.process_batch(names, matrix)
        assert first.accepted_names == ("t.x", "t.y")
        second = selector.process_batch(names, matrix)
        assert second.accepted_names == ()
        assert selector.n_selected == 2
        assert selector.selected_names == ["t.x", "t.y"]

    def test_reoffered_batch_not_reaccepted_with_scoring_on(self):
        selector, label = self._selector()
        rng = np.random.default_rng(0)
        matrix = np.column_stack([label + 0.01 * rng.normal(size=8)])
        first = selector.process_batch(["t.x"], matrix)
        assert first.accepted_names == ("t.x",)
        second = selector.process_batch(["t.x"], matrix)
        assert second.accepted_names == ()
        assert selector.n_selected == 1

    def test_is_selected_tracks_acceptance(self):
        selector, label = self._selector(
            use_relevance=False, use_redundancy=False
        )
        assert not selector.is_selected("t.x")
        selector.process_batch(["t.x"], label.reshape(-1, 1))
        assert selector.is_selected("t.x")


class TestBaselinesUnderInjection:
    """All four baselines degrade gracefully and account their failures."""

    def test_join_all_skips_faulty_hop(self, drg):
        result = run_join_all(
            drg, "base", "label", seed=1, fault_injector=injector()
        )
        # The faulty base -> a hop is skipped; b and c still join (c is
        # reachable through b on a shallower BFS level).
        assert result.n_joined_tables == 2
        report = result.failure_report
        assert report.n_failures == 1
        assert report.records[0].stage == "join_all"
        assert report.records[0].edge == FAULTY_EDGE

    def test_join_all_fail_fast_propagates(self, drg):
        with pytest.raises(InjectedFaultError):
            run_join_all(
                drg,
                "base",
                "label",
                seed=1,
                failure_policy="fail_fast",
                fault_injector=injector(),
            )

    def test_arda_records_star_join_failure(self, drg):
        result = run_arda(
            drg, "base", "label", seed=1, fault_injector=injector()
        )
        report = result.failure_report
        assert report.n_failures == 1
        assert report.records[0].stage == "arda"
        assert result.n_joined_tables == 1

    def test_mab_penalises_and_records_faulty_arm(self, drg):
        result = run_mab(
            drg, "base", "label", seed=1, budget=6, fault_injector=injector()
        )
        report = result.failure_report
        assert report is not None
        assert all(r.stage == "mab" for r in report.records)
        assert 0.0 <= result.accuracy <= 1.0

    def test_autofeat_adapter_exposes_combined_report(self, drg):
        result = run_autofeat(
            drg,
            "base",
            "label",
            config=config(),
            seed=1,
            fault_injector=injector(),
        )
        assert result.failure_report is not None
        assert result.failure_report.n_failures == 1


class TestEmptyContributionAccounting:
    def test_clean_run_counts_no_empty_contributions(self, drg):
        discovery = AutoFeat(drg, config()).discover("base", "label")
        assert discovery.n_hops_empty_contribution == 0
        assert discovery.failure_report.ok
