"""Anytime budgeted navigation: parity, determinism, and regret.

The contracts under test (DESIGN.md §14):

* **No budget** — navigation is bit-identical to the reference full BFS
  on every parallel backend, whatever ``frontier_strategy`` says.
* **Hop budget** — expiry is deterministic: the same ``max_hops`` yields
  the same fingerprint across serial/threads/processes and across
  repeat runs, explored sets nest as the budget grows, and
  :func:`ranking_regret` is monotone non-increasing in the budget.
* **Wall-clock budget** — the run returns within budget plus bounded
  slack and marks ``budget_exhausted``.
"""

import math
import time

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import (
    AutoFeat,
    AutoFeatConfig,
    FrontierEntry,
    NavigationFrontier,
    NavigationStats,
    RunBudget,
    UcbFrontierPolicy,
    hop_reward,
    ranking_regret,
    ucb_score,
)
from repro.errors import ConfigError
from repro.graph import JoinPath
from repro.obs import MetricsRegistry

from tests.engine.test_parallel_parity import (
    BACKENDS,
    _discover,
    _lake,
    discovery_fingerprint,
)

lakes = st.tuples(
    st.integers(min_value=3, max_value=6),  # n_satellites
    st.integers(min_value=1, max_value=3),  # max_depth
    st.integers(min_value=0, max_value=2),  # lake seed
)


class TestUcbScore:
    def test_unpulled_arm_is_infinite(self):
        assert ucb_score(0, 0.0, 0, 0.5) == math.inf
        assert ucb_score(0, 0.0, 100, 2.0) == math.inf

    def test_bonus_positive_from_first_pull(self):
        # The log(max(total, 1)) cold-start bug zeroed this: with one
        # total pull the bonus collapsed to 0 and selection degenerated
        # to one-sample means.
        assert ucb_score(1, 0.0, 1, 0.5) > 0.0

    def test_mean_plus_bonus(self):
        score = ucb_score(4, 2.0, 10, 0.5)
        assert score == pytest.approx(
            0.5 + 0.5 * math.sqrt(2 * math.log(11) / 4)
        )

    def test_zero_exploration_is_pure_mean(self):
        assert ucb_score(5, 3.0, 50, 0.0) == pytest.approx(0.6)


class TestHopReward:
    def test_bounded_and_monotone(self):
        assert hop_reward(-5.0, 1.0) == 0.0
        assert hop_reward(1.0, 1.0) == 1.0
        assert hop_reward(5.0, 2.0) == 1.0  # clamped on both axes
        assert hop_reward(0.5, 0.0) == 0.0
        assert 0.0 < hop_reward(0.0, 0.5) < hop_reward(0.5, 0.5)


class TestRunBudget:
    def test_inactive_never_trips(self):
        budget = RunBudget.start(None, None)
        assert not budget.active
        assert not budget.expired()
        assert not budget.exhausted(10**9)
        assert budget.hops_remaining(5) is None
        assert budget.remaining_seconds() is None

    def test_hop_cap(self):
        budget = RunBudget.start(None, 3)
        assert budget.active
        assert not budget.exhausted(2)
        assert budget.exhausted(3)
        assert budget.hops_remaining(1) == 2
        assert budget.hops_remaining(7) == 0

    def test_wall_clock(self):
        budget = RunBudget.start(1e-9, None)
        time.sleep(0.002)
        assert budget.expired() and budget.exhausted(0)
        assert budget.remaining_seconds() < 0
        relaxed = RunBudget.start(3600.0, None)
        assert not relaxed.expired()

    def test_explicit_deadline_wins_over_budget_seconds(self):
        deadline = time.monotonic() - 1.0
        budget = RunBudget.start(3600.0, None, deadline=deadline)
        assert budget.deadline == deadline
        assert budget.expired()


class TestNavigationFrontier:
    @staticmethod
    def _entry_paths(frontier):
        out = []
        while frontier:
            out.append(frontier.pop().path)
        return out

    def test_fifo_bfs_and_dfs_orders(self):
        bfs = NavigationFrontier(traversal="bfs", strategy="fifo")
        dfs = NavigationFrontier(traversal="dfs", strategy="fifo")
        for frontier in (bfs, dfs):
            for name in ("a", "b", "c"):
                frontier.push(name, None)
        assert self._entry_paths(bfs) == ["a", "b", "c"]
        assert self._entry_paths(dfs) == ["c", "b", "a"]

    def test_ucb_requires_policy_and_known_strategy(self):
        with pytest.raises(ConfigError, match="policy"):
            NavigationFrontier(strategy="ucb")
        with pytest.raises(ConfigError, match="strategy"):
            NavigationFrontier(strategy="greedy")

    def test_ucb_prefers_high_reward_then_canonical_order(self):
        policy = UcbFrontierPolicy(exploration=0.5)
        frontier = NavigationFrontier(strategy="ucb", policy=policy)
        # Two arms with history: t1 productive, t2 not.
        policy.update("t1", 0.9)
        policy.update("t2", 0.0)
        frontier.push(JoinPath("t2"), None, reward=0.0)
        frontier.push(JoinPath("t1"), None, reward=0.9)
        assert frontier.pop().path.base == "t1"
        assert frontier.pop().path.base == "t2"

    def test_ucb_ties_break_on_lowest_canonical_order(self):
        policy = UcbFrontierPolicy(exploration=0.5)
        frontier = NavigationFrontier(strategy="ucb", policy=policy)
        # No arm has been pulled: every priority is +inf, so pops must
        # come back in canonical push order, not list position noise.
        for name in ("x", "y", "z"):
            frontier.push(JoinPath(name), None)
        assert [frontier.pop().path.base for _ in range(3)] == ["x", "y", "z"]

    def test_drain_level_preserves_canonical_order(self):
        frontier = NavigationFrontier()
        for name in ("a", "b"):
            frontier.push(name, None)
        level = frontier.drain_level()
        assert [e.path for e in level] == ["a", "b"]
        assert len(frontier) == 0 and not frontier

    def test_entry_orders_are_stable_serials(self):
        frontier = NavigationFrontier()
        orders = [frontier.push(str(i), None).order for i in range(4)]
        assert orders == [0, 1, 2, 3]
        assert isinstance(frontier.drain_level()[0], FrontierEntry)


class TestNavigationStats:
    def test_publish_and_dict(self):
        stats = NavigationStats(
            strategy="ucb",
            max_hops=4,
            hops_executed=4,
            budget_exhausted=True,
            frontier_unexplored=2,
            best_score=0.25,
            arms_tracked=3,
        )
        registry = stats.publish(MetricsRegistry())
        assert registry.value("navigation.budget_exhausted") == 1
        assert registry.value("navigation.hops_executed") == 4
        assert registry.value("navigation.frontier_unexplored") == 2
        assert registry.value("navigation.max_hops") == 4
        assert stats.as_dict()["budget_exhausted"] is True
        assert "exhausted" in stats.describe()

    def test_config_validation(self):
        with pytest.raises(ConfigError, match="budget_seconds"):
            AutoFeatConfig(budget_seconds=0.0)
        with pytest.raises(ConfigError, match="max_hops"):
            AutoFeatConfig(max_hops=-1)
        with pytest.raises(ConfigError, match="frontier strategy"):
            AutoFeatConfig(frontier_strategy="greedy")
        with pytest.raises(ConfigError, match="frontier_exploration"):
            AutoFeatConfig(frontier_exploration=-0.1)


class TestRankingRegret:
    def test_zero_on_identical_runs(self):
        bundle, drg = _lake(4, 2, 0)
        full = _discover(drg, bundle, "serial")
        assert ranking_regret(full, full) == 0.0

    def test_empty_partial_is_full_regret(self):
        bundle, drg = _lake(4, 2, 0)
        full = _discover(drg, bundle, "serial")
        partial = _discover(drg, bundle, "serial", max_hops=0)
        assert partial.budget_exhausted
        assert not partial.ranked_paths
        if full.ranked_paths and max(r.score for r in full.ranked_paths) > 0:
            assert ranking_regret(full, partial) == 1.0


@settings(
    max_examples=6,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(
    lake=lakes,
    strategy=st.sampled_from(["fifo", "ucb"]),
    backend=st.sampled_from(BACKENDS),
)
def test_unbudgeted_runs_bit_identical_to_reference(lake, strategy, backend):
    """No budget ⇒ canonical traversal, whatever the strategy knob says."""
    bundle, drg = _lake(*lake)
    reference = _discover(drg, bundle, "serial")
    probed = _discover(drg, bundle, backend, frontier_strategy=strategy)
    assert discovery_fingerprint(probed) == discovery_fingerprint(reference)
    assert probed.navigation.strategy == "fifo"  # degenerated, by design
    assert not probed.budget_exhausted
    assert probed.navigation.frontier_unexplored == 0


@settings(
    max_examples=5,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(
    lake=lakes,
    max_hops=st.integers(min_value=1, max_value=6),
    strategy=st.sampled_from(["fifo", "ucb"]),
)
def test_hop_budget_expiry_deterministic_across_backends(
    lake, max_hops, strategy
):
    """The same hop budget executes the same prefix everywhere, twice."""
    bundle, drg = _lake(*lake)
    full = _discover(drg, bundle, "serial")
    fingerprints = {}
    for backend in BACKENDS:
        run = _discover(
            drg,
            bundle,
            backend,
            max_hops=max_hops,
            frontier_strategy=strategy,
        )
        rerun = _discover(
            drg,
            bundle,
            backend,
            max_hops=max_hops,
            frontier_strategy=strategy,
        )
        assert discovery_fingerprint(run) == discovery_fingerprint(rerun)
        assert run.navigation.as_dict() == rerun.navigation.as_dict()
        assert run.navigation.hops_executed <= max_hops
        assert run.budget_exhausted == (
            run.navigation.hops_executed < full.navigation.hops_executed
            or run.navigation.frontier_unexplored > 0
        )
        fingerprints[backend] = discovery_fingerprint(run)
    assert fingerprints["threads"] == fingerprints["serial"]
    assert fingerprints["processes"] == fingerprints["serial"]


@settings(
    max_examples=4,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(
    lake=st.tuples(
        st.integers(min_value=3, max_value=5),
        st.integers(min_value=1, max_value=2),
        st.integers(min_value=0, max_value=2),
    ),
    strategy=st.sampled_from(["fifo", "ucb"]),
)
def test_regret_monotone_and_explored_sets_nest(lake, strategy):
    """Growing the hop budget never loses paths and never adds regret."""
    bundle, drg = _lake(*lake)
    full = _discover(drg, bundle, "serial")
    total_hops = full.navigation.hops_executed
    previous_paths: set = set()
    previous_regret = 1.0 + 1e-9
    for max_hops in range(total_hops + 1):
        partial = _discover(
            drg, bundle, "serial", max_hops=max_hops, frontier_strategy=strategy
        )
        paths = {r.path.describe() for r in partial.ranked_paths}
        assert previous_paths <= paths
        regret = ranking_regret(full, partial)
        assert regret <= previous_regret + 1e-12
        previous_paths, previous_regret = paths, regret
    assert previous_regret == 0.0  # the full budget reproduces the best
    final = _discover(
        drg, bundle, "serial", max_hops=total_hops, frontier_strategy=strategy
    )
    assert {r.path.describe() for r in final.ranked_paths} == {
        r.path.describe() for r in full.ranked_paths
    }


class TestWallClockBudget:
    def test_immediate_deadline_returns_partial(self):
        bundle, drg = _lake(5, 3, 0)
        started = time.monotonic()
        result = _discover(drg, bundle, "serial", budget_seconds=1e-9)
        elapsed = time.monotonic() - started
        assert result.budget_exhausted
        assert result.navigation.hops_executed == 0
        assert not result.ranked_paths
        # Generous slack: the budget bounds exploration, and nothing
        # beyond per-hop work remains once it trips.
        assert elapsed < 30.0

    def test_generous_deadline_matches_reference(self):
        bundle, drg = _lake(4, 2, 1)
        reference = _discover(drg, bundle, "serial")
        budgeted = _discover(drg, bundle, "serial", budget_seconds=3600.0)
        assert not budgeted.budget_exhausted
        assert discovery_fingerprint(budgeted)["ranked"] == (
            discovery_fingerprint(reference)["ranked"]
        )

    def test_augment_propagates_shared_deadline(self):
        bundle, drg = _lake(4, 2, 0)
        config = AutoFeatConfig(
            sample_size=120,
            seed=0,
            top_k=2,
            budget_seconds=1e-9,
            parallel_backend="serial",
        )
        result = AutoFeat(drg, config).augment(
            bundle.base_name, bundle.label_column, model_name="random_forest"
        )
        assert result.budget_exhausted
        assert result.trained == ()
        assert result.discovery.budget_exhausted

    def test_augment_unbudgeted_flags_clear(self):
        bundle, drg = _lake(3, 1, 0)
        config = AutoFeatConfig(
            sample_size=120, seed=0, top_k=1, parallel_backend="serial"
        )
        result = AutoFeat(drg, config).augment(
            bundle.base_name, bundle.label_column, model_name="random_forest"
        )
        assert not result.budget_exhausted
        assert not result.discovery.budget_exhausted


class TestManifestRecordsBudget:
    def test_discovery_manifest_gauges(self):
        bundle, drg = _lake(4, 2, 0)
        partial = _discover(drg, bundle, "serial", max_hops=1)
        metrics = partial.run_manifest.metrics
        assert metrics["gauges"]["navigation.budget_exhausted"] == 1
        assert metrics["gauges"]["navigation.hops_executed"] == 1
        assert metrics["gauges"]["navigation.max_hops"] == 1
        complete = _discover(drg, bundle, "serial")
        gauges = complete.run_manifest.metrics["gauges"]
        assert gauges["navigation.budget_exhausted"] == 0
