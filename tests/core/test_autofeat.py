"""Integration-style tests for the full AutoFeat algorithm."""

import numpy as np
import pytest

from repro.core import AutoFeat, AutoFeatConfig
from repro.dataframe import Table
from repro.errors import JoinError
from repro.graph import DatasetRelationGraph, KFKConstraint


def planted_lake(n=700, seed=7):
    """Base with weak features; the real signal sits two hops away."""
    rng = np.random.default_rng(seed)
    ids = np.arange(n)
    mid_key = rng.permutation(n) + 10_000
    deep_key = rng.permutation(n) + 50_000
    signal = rng.normal(0, 1, n)
    label = ((signal + rng.normal(0, 0.4, n)) > 0).astype(int)

    base = Table(
        {"id": ids, "weak": rng.normal(0, 1, n), "label": label}, name="base"
    )
    mid = Table(
        {"mid_key": mid_key, "deep_key": deep_key, "mid_noise": rng.normal(0, 1, n)},
        name="mid",
    )
    deep = Table({"deep_key": deep_key, "signal": signal}, name="deep")
    junk = Table({"id": ids, "junk": rng.normal(0, 1, n)}, name="junk")
    base = base.with_column("mid_key", mid.column("mid_key"))
    drg = DatasetRelationGraph.from_constraints(
        [base, mid, deep, junk],
        [
            KFKConstraint("base", "mid_key", "mid", "mid_key"),
            KFKConstraint("mid", "deep_key", "deep", "deep_key"),
            KFKConstraint("base", "id", "junk", "id"),
        ],
    )
    return drg


@pytest.fixture(scope="module")
def drg():
    return planted_lake()


@pytest.fixture(scope="module")
def discovery(drg):
    autofeat = AutoFeat(drg, AutoFeatConfig(sample_size=500, seed=1))
    return autofeat.discover("base", "label")


class TestDiscovery:
    def test_transitive_path_ranked_first(self, discovery):
        best = discovery.best_path
        assert best is not None
        assert best.path.terminal == "deep"
        assert "deep.signal" in best.selected_features

    def test_all_paths_explored(self, discovery):
        # base->mid, base->junk, base->mid->deep.
        assert discovery.n_paths_explored == 3
        assert len(discovery.ranked_paths) == 3

    def test_scores_descending(self, discovery):
        scores = [r.score for r in discovery.ranked_paths]
        assert scores == sorted(scores, reverse=True)

    def test_junk_path_contributes_no_features(self, discovery):
        junk_paths = [
            r for r in discovery.ranked_paths if r.path.terminal == "junk"
        ]
        assert junk_paths
        assert junk_paths[0].selected_features == ()

    def test_feature_selection_time_recorded(self, discovery):
        assert discovery.feature_selection_seconds > 0

    def test_top_k(self, discovery):
        assert len(discovery.top(2)) == 2

    def test_missing_label_raises(self, drg):
        with pytest.raises(JoinError):
            AutoFeat(drg).discover("base", "not_a_column")


class TestTraining:
    def test_best_path_improves_over_base(self, drg, discovery):
        from repro.ml import evaluate_accuracy

        autofeat = AutoFeat(drg, AutoFeatConfig(sample_size=500, seed=1))
        result = autofeat.train_top_k(discovery, "lightgbm")
        base_acc = evaluate_accuracy(
            drg.table("base"), "label", "lightgbm", seed=1
        )
        assert result.accuracy > base_acc + 0.05

    def test_augmented_table_has_selected_features(self, drg, discovery):
        autofeat = AutoFeat(drg, AutoFeatConfig(sample_size=500, seed=1))
        result = autofeat.train_top_k(discovery, "lightgbm")
        assert result.augmented_table is not None
        assert "deep.signal" in result.augmented_table
        assert "label" in result.augmented_table

    def test_summary_mentions_best_path(self, drg, discovery):
        autofeat = AutoFeat(drg, AutoFeatConfig(sample_size=500, seed=1))
        result = autofeat.train_top_k(discovery, "lightgbm")
        assert "best accuracy" in result.summary()
        assert result.n_joined_tables == 2

    def test_total_time_includes_selection(self, drg, discovery):
        autofeat = AutoFeat(drg, AutoFeatConfig(sample_size=500, seed=1))
        result = autofeat.train_top_k(discovery, "lightgbm")
        assert result.total_seconds >= discovery.feature_selection_seconds


class TestDeterminism:
    def test_same_seed_same_ranking(self, drg):
        config = AutoFeatConfig(sample_size=500, seed=3)
        a = AutoFeat(drg, config).discover("base", "label")
        b = AutoFeat(drg, config).discover("base", "label")
        assert [r.path.describe() for r in a.ranked_paths] == [
            r.path.describe() for r in b.ranked_paths
        ]
        assert [r.score for r in a.ranked_paths] == [
            r.score for r in b.ranked_paths
        ]


class TestSelectionKernelParity:
    """``enable_selection_kernels`` must be an exact A/B switch end to end."""

    @pytest.fixture(scope="class")
    def pair(self, drg):
        on = AutoFeat(
            drg, AutoFeatConfig(sample_size=500, seed=1, enable_selection_kernels=True)
        ).discover("base", "label")
        off = AutoFeat(
            drg, AutoFeatConfig(sample_size=500, seed=1, enable_selection_kernels=False)
        ).discover("base", "label")
        return on, off

    def test_ranked_paths_identical(self, pair):
        on, off = pair
        assert [r.path.describe() for r in on.ranked_paths] == [
            r.path.describe() for r in off.ranked_paths
        ]
        for a, b in zip(on.ranked_paths, off.ranked_paths):
            assert a.score == b.score
            assert a.selected_features == b.selected_features
            assert a.relevance_scores == b.relevance_scores
            assert a.redundancy_scores == b.redundancy_scores

    def test_stats_reflect_kernel_usage(self, pair):
        on, off = pair
        assert on.selection_stats.codes_cached > 0
        assert on.selection_stats.codes_reused > 0
        assert off.selection_stats.codes_cached == 0
        assert off.selection_stats.codes_reused == 0
        assert (
            on.selection_stats.batches_scored
            == off.selection_stats.batches_scored
            > 0
        )

    def test_summary_reports_selection_stats(self, drg, discovery):
        autofeat = AutoFeat(drg, AutoFeatConfig(sample_size=500, seed=1))
        result = autofeat.train_top_k(discovery, "lightgbm")
        assert "selection:" in result.summary()
        assert "codes cached" in result.summary()


class TestConfigEffects:
    def test_max_path_length_one_blocks_transitive(self, drg):
        config = AutoFeatConfig(sample_size=500, max_path_length=1, seed=1)
        discovery = AutoFeat(drg, config).discover("base", "label")
        assert all(r.path.length == 1 for r in discovery.ranked_paths)

    def test_dfs_traversal_finds_same_paths(self, drg):
        bfs = AutoFeat(
            drg, AutoFeatConfig(sample_size=500, seed=1)
        ).discover("base", "label")
        dfs = AutoFeat(
            drg, AutoFeatConfig(sample_size=500, traversal="dfs", seed=1)
        ).discover("base", "label")
        assert {r.path.describe() for r in bfs.ranked_paths} == {
            r.path.describe() for r in dfs.ranked_paths
        }

    def test_tau_one_prunes_imperfect_joins(self):
        # Satellite covering half the base rows: completeness ~0.5.
        rng = np.random.default_rng(0)
        n = 400
        ids = np.arange(n)
        label = rng.integers(0, 2, n)
        base = Table({"id": ids, "x": rng.normal(0, 1, n), "label": label}, name="base")
        partial = Table(
            {"id": ids[: n // 2], "y": rng.normal(0, 1, n // 2)}, name="partial"
        )
        drg = DatasetRelationGraph.from_constraints(
            [base, partial], [KFKConstraint("base", "id", "partial", "id")]
        )
        strict = AutoFeat(drg, AutoFeatConfig(tau=1.0, sample_size=300, seed=1))
        discovery = strict.discover("base", "label")
        assert discovery.n_paths_pruned_quality == 1
        assert len(discovery.ranked_paths) == 0
        lenient = AutoFeat(drg, AutoFeatConfig(tau=0.3, sample_size=300, seed=1))
        assert len(lenient.discover("base", "label").ranked_paths) == 1

    def test_no_paths_yields_empty_result(self):
        rng = np.random.default_rng(1)
        base = Table(
            {"id": [1, 2, 3, 4] * 5, "x": rng.normal(0, 1, 20), "label": [0, 1] * 10},
            name="base",
        )
        drg = DatasetRelationGraph.from_constraints([base], [])
        result = AutoFeat(drg, AutoFeatConfig(sample_size=10, seed=0)).augment(
            "base", "label"
        )
        assert result.best is None
        assert result.augmented_table is None
        assert result.accuracy == 0.0
