"""Failure-injection tests: degenerate lakes the pipeline must survive."""

import numpy as np
import pytest

from repro.core import AutoFeat, AutoFeatConfig
from repro.dataframe import Column, Table
from repro.graph import DatasetRelationGraph, KFKConstraint


def base_table(n=200, seed=0):
    rng = np.random.default_rng(seed)
    return Table(
        {
            "id": np.arange(n),
            "x": rng.normal(0, 1, n),
            "label": rng.integers(0, 2, n),
        },
        name="base",
    )


def config():
    return AutoFeatConfig(sample_size=150, seed=1)


class TestDegenerateSatellites:
    def test_zero_key_overlap_join_pruned(self):
        base = base_table()
        stranger = Table(
            {"id": np.arange(1000, 1100), "y": np.zeros(100)}, name="stranger"
        )
        drg = DatasetRelationGraph.from_constraints(
            [base, stranger], [KFKConstraint("base", "id", "stranger", "id")]
        )
        discovery = AutoFeat(drg, config()).discover("base", "label")
        # The join matches nothing: completeness 0 -> quality-pruned.
        assert discovery.n_paths_pruned_quality == 1
        assert discovery.ranked_paths == ()

    def test_single_row_satellite(self):
        base = base_table()
        tiny = Table({"id": [0], "y": [1.0]}, name="tiny")
        drg = DatasetRelationGraph.from_constraints(
            [base, tiny], [KFKConstraint("base", "id", "tiny", "id")]
        )
        discovery = AutoFeat(drg, config()).discover("base", "label")
        # Survives or prunes, but never crashes; at tau=0.65 it prunes.
        assert discovery.n_paths_explored == 1

    def test_all_null_satellite_feature(self):
        base = base_table()
        nully = Table(
            {"id": np.arange(200), "y": Column.nulls(200)}, name="nully"
        )
        drg = DatasetRelationGraph.from_constraints(
            [base, nully], [KFKConstraint("base", "id", "nully", "id")]
        )
        discovery = AutoFeat(drg, config()).discover("base", "label")
        # The key matches (key completeness counts), the feature is null;
        # selection treats it as irrelevant. No crash either way.
        assert discovery.n_paths_explored == 1

    def test_constant_satellite_feature_rejected(self):
        base = base_table()
        constant = Table(
            {"id": np.arange(200), "y": np.full(200, 7.0)}, name="constant"
        )
        drg = DatasetRelationGraph.from_constraints(
            [base, constant], [KFKConstraint("base", "id", "constant", "id")]
        )
        discovery = AutoFeat(drg, config()).discover("base", "label")
        ranked = discovery.ranked_paths
        assert ranked and ranked[0].selected_features == ()

    def test_string_join_keys(self):
        rng = np.random.default_rng(2)
        n = 150
        keys = [f"k{i}" for i in range(n)]
        signal = rng.normal(0, 1, n)
        label = (signal > 0).astype(int)
        base = Table(
            {"key": keys, "x": rng.normal(0, 1, n), "label": label}, name="base"
        )
        sat = Table({"key": keys, "signal": signal}, name="sat")
        drg = DatasetRelationGraph.from_constraints(
            [base, sat], [KFKConstraint("base", "key", "sat", "key")]
        )
        result = AutoFeat(drg, config()).augment("base", "label")
        assert result.best is not None
        assert "sat.signal" in result.best.ranked.selected_features


class TestDegenerateLabels:
    def test_heavily_imbalanced_label(self):
        rng = np.random.default_rng(3)
        n = 300
        label = np.zeros(n, dtype=int)
        label[:12] = 1
        base = Table(
            {"id": np.arange(n), "x": rng.normal(0, 1, n), "label": label},
            name="base",
        )
        sat = Table({"id": np.arange(n), "y": rng.normal(0, 1, n)}, name="sat")
        drg = DatasetRelationGraph.from_constraints(
            [base, sat], [KFKConstraint("base", "id", "sat", "id")]
        )
        result = AutoFeat(drg, config()).augment("base", "label")
        # Stratified splits keep the rare class; accuracy is defined.
        assert 0.0 <= result.accuracy <= 1.0


class TestDiamondGraphs:
    def test_diamond_paths_both_explored(self):
        """base -> {a, b} -> shared: two distinct 2-hop paths."""
        rng = np.random.default_rng(4)
        n = 200
        ids = np.arange(n)
        ka = rng.permutation(n) + 10_000
        kb = rng.permutation(n) + 20_000
        kshared = rng.permutation(n) + 30_000
        base = Table(
            {
                "ka": ka,
                "kb": kb,
                "x": rng.normal(0, 1, n),
                "label": rng.integers(0, 2, n),
            },
            name="base",
        )
        a = Table({"ka": ka, "ks": kshared, "fa": rng.normal(0, 1, n)}, name="a")
        b = Table({"kb": kb, "ks": kshared, "fb": rng.normal(0, 1, n)}, name="b")
        shared = Table({"ks": kshared, "fs": rng.normal(0, 1, n)}, name="shared")
        drg = DatasetRelationGraph.from_constraints(
            [base, a, b, shared],
            [
                KFKConstraint("base", "ka", "a", "ka"),
                KFKConstraint("base", "kb", "b", "kb"),
                KFKConstraint("a", "ks", "shared", "ks"),
                KFKConstraint("b", "ks", "shared", "ks"),
            ],
        )
        discovery = AutoFeat(drg, config()).discover("base", "label")
        two_hop_to_shared = [
            r
            for r in discovery.ranked_paths
            if r.path.length == 2 and r.path.terminal == "shared"
        ]
        assert len(two_hop_to_shared) == 2  # via a AND via b
