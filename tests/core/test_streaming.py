"""Unit tests for the streaming feature-selection pipeline."""

import numpy as np
import pytest

from repro.core import AutoFeatConfig, StreamingFeatureSelector
from repro.errors import SelectionError


@pytest.fixture
def label():
    rng = np.random.default_rng(0)
    return rng.integers(0, 2, 1200).astype(float)


@pytest.fixture
def features(label):
    rng = np.random.default_rng(1)
    return {
        "strong": label + rng.normal(0, 0.3, len(label)),
        "weak": label + rng.normal(0, 3.0, len(label)),
        "noise": rng.normal(0, 1, len(label)),
    }


def selector(label, **overrides):
    config = AutoFeatConfig(**overrides) if overrides else AutoFeatConfig()
    return StreamingFeatureSelector(config, label)


class TestSeeding:
    def test_seed_populates_selected(self, label, features):
        s = selector(label)
        s.seed_with(["strong"], features["strong"].reshape(-1, 1))
        assert s.selected_names == ["strong"]

    def test_seed_shape_mismatch_raises(self, label):
        s = selector(label)
        with pytest.raises(SelectionError):
            s.seed_with(["a"], np.zeros((10, 1)))

    def test_label_must_be_vector(self):
        with pytest.raises(SelectionError):
            StreamingFeatureSelector(AutoFeatConfig(), np.zeros((5, 2)))


class TestRelevanceStage:
    def test_irrelevant_batch_rejected(self, label, features):
        s = selector(label)
        outcome = s.process_batch(["noise"], features["noise"].reshape(-1, 1))
        assert outcome.all_irrelevant
        assert s.n_selected == 0

    def test_relevant_batch_accepted(self, label, features):
        s = selector(label)
        outcome = s.process_batch(["strong"], features["strong"].reshape(-1, 1))
        assert outcome.accepted_names == ("strong",)
        assert s.selected_names == ["strong"]

    def test_kappa_caps_survivors(self, label):
        rng = np.random.default_rng(2)
        names = [f"f{i}" for i in range(10)]
        X = np.column_stack(
            [label + rng.normal(0, 0.5, len(label)) for __ in names]
        )
        s = selector(label, kappa=3)
        outcome = s.process_batch(names, X)
        assert len(outcome.relevant_names) <= 3

    def test_relevance_scores_sorted(self, label, features):
        s = selector(label)
        X = np.column_stack([features["weak"], features["strong"]])
        outcome = s.process_batch(["weak", "strong"], X)
        assert list(outcome.relevance_scores) == sorted(
            outcome.relevance_scores, reverse=True
        )


class TestRedundancyStage:
    def test_duplicate_of_selected_rejected(self, label, features):
        s = selector(label)
        s.seed_with(["strong"], features["strong"].reshape(-1, 1))
        duplicate = features["strong"] + np.random.default_rng(3).normal(
            0, 0.01, len(label)
        )
        outcome = s.process_batch(["dup"], duplicate.reshape(-1, 1))
        assert outcome.all_redundant
        assert s.selected_names == ["strong"]

    def test_fresh_signal_accepted_after_seed(self, label, features):
        rng = np.random.default_rng(4)
        s = selector(label)
        s.seed_with(["noise"], features["noise"].reshape(-1, 1))
        outcome = s.process_batch(
            ["strong"], features["strong"].reshape(-1, 1)
        )
        assert "strong" in outcome.accepted_names

    def test_selected_set_grows_across_batches(self, label, features):
        s = selector(label)
        s.process_batch(["strong"], features["strong"].reshape(-1, 1))
        before = s.n_selected
        rng = np.random.default_rng(5)
        other = (1 - label) + rng.normal(0, 0.3, len(label))
        s.process_batch(["other"], other.reshape(-1, 1))
        assert s.n_selected >= before


class TestAblationSwitches:
    def test_relevance_off_passes_everything_to_redundancy(self, label, features):
        s = selector(label, use_relevance=False)
        outcome = s.process_batch(["noise"], features["noise"].reshape(-1, 1))
        # Noise is not pruned by relevance; redundancy sees it (and may
        # accept it since nothing is selected yet).
        assert outcome.relevant_names == ("noise",)

    def test_redundancy_off_accepts_all_relevant(self, label, features):
        s = selector(label, use_redundancy=False)
        s.seed_with(["strong"], features["strong"].reshape(-1, 1))
        duplicate = features["strong"] + 0.001
        outcome = s.process_batch(["dup"], duplicate.reshape(-1, 1))
        assert outcome.accepted_names == ("dup",)


class TestValidation:
    def test_empty_batch_noop(self, label):
        s = selector(label)
        outcome = s.process_batch([], np.empty((len(label), 0)))
        assert outcome.accepted_names == ()

    def test_wrong_row_count_raises(self, label):
        s = selector(label)
        with pytest.raises(SelectionError):
            s.process_batch(["a"], np.zeros((10, 1)))

    def test_name_count_mismatch_raises(self, label):
        s = selector(label)
        with pytest.raises(SelectionError):
            s.process_batch(["a", "b"], np.zeros((len(label), 1)))
