"""Unit tests for Algorithm 2 ranking and the pruning rules."""

import pytest

from repro.core import compute_ranking_score, completeness, normalised_sum, passes_quality
from repro.dataframe import Table


class TestNormalisedSum:
    def test_empty_is_zero(self):
        assert normalised_sum([]) == 0.0

    def test_mean(self):
        assert normalised_sum([1.0, 2.0, 3.0]) == 2.0


class TestRankingScore:
    def test_both_empty_is_zero(self):
        assert compute_ranking_score([], []) == 0.0

    def test_relevance_only(self):
        assert compute_ranking_score([0.4, 0.6], []) == pytest.approx(0.5)

    def test_redundancy_only(self):
        assert compute_ranking_score([], [0.2]) == pytest.approx(0.2)

    def test_combined_average(self):
        assert compute_ranking_score([0.4], [0.2]) == pytest.approx(0.3)

    def test_cardinality_normalisation(self):
        # Many weak features must not outrank one strong feature.
        weak = compute_ranking_score([0.1] * 10, [0.1] * 10)
        strong = compute_ranking_score([0.9], [0.9])
        assert strong > weak

    def test_monotone_in_scores(self):
        low = compute_ranking_score([0.1], [0.1])
        high = compute_ranking_score([0.9], [0.9])
        assert high > low


class TestCompleteness:
    def make(self):
        return Table(
            {"a": [1, 2, 3, 4], "b": [1, None, None, None], "c": [1, 2, None, 4]},
            name="t",
        )

    def test_full_column(self):
        assert completeness(self.make(), ["a"]) == 1.0

    def test_mostly_null(self):
        assert completeness(self.make(), ["b"]) == 0.25

    def test_multiple_columns(self):
        assert completeness(self.make(), ["b", "c"]) == pytest.approx(0.5)

    def test_missing_columns_vacuously_complete(self):
        # An empty contribution carries no evidence of a bad join: it must
        # not be quality-pruned (it may be a stepping-stone hop).
        assert completeness(self.make(), ["zzz"]) == 1.0
        assert completeness(self.make(), []) == 1.0

    def test_empty_contribution_passes_quality(self):
        assert passes_quality(self.make(), [], tau=1.0)


class TestQualityRule:
    def test_keeps_above_threshold(self):
        t = Table({"x": [1, 2, 3, None]}, name="t")
        assert passes_quality(t, ["x"], tau=0.65)

    def test_prunes_below_threshold(self):
        t = Table({"x": [1, None, None, None]}, name="t")
        assert not passes_quality(t, ["x"], tau=0.65)

    def test_tau_one_requires_perfection(self):
        perfect = Table({"x": [1, 2]}, name="t")
        flawed = Table({"x": [1, None]}, name="t")
        assert passes_quality(perfect, ["x"], tau=1.0)
        assert not passes_quality(flawed, ["x"], tau=1.0)

    def test_tau_zero_keeps_everything(self):
        empty = Table({"x": [None, None]}, name="t")
        assert passes_quality(empty, ["x"], tau=0.0)
