"""Stress: parallel discovery under heavy fault injection, every policy.

Runs the diamond lake of ``test_fault_isolation`` through ``discover``
with 30% injected failure rates across all three ``FailurePolicy`` modes
and both worker-pool backends, asserting the degradation contract:

* failure reports (kinds, messages, edges, retry counts) are identical to
  serial for every (policy, backend, seed) combination;
* the shared error budget trips **exactly once**, at the same canonical
  failure as serial — not once per worker;
* same-seed runs are bit-reproducible;
* unexpected worker exceptions (outside the managed ``JoinError`` /
  ``FaultError`` family) are never swallowed by the pool.
"""

import numpy as np
import pytest

from repro.core import AutoFeat, AutoFeatConfig
from repro.dataframe import Table
from repro.engine import FaultInjector, JoinEngine
from repro.errors import ErrorBudgetExceeded, FaultError
from repro.graph import DatasetRelationGraph, KFKConstraint

PARALLEL = ("threads", "processes")
POLICIES = ("fail_fast", "skip_and_record", "retry")


def diamond_lake(n=400, seed=3):
    rng = np.random.default_rng(seed)
    ids = np.arange(n)
    a_key = rng.permutation(n) + 1_000
    b_key = rng.permutation(n) + 5_000
    shared = rng.permutation(n) + 9_000
    signal = rng.normal(0, 1, n)
    label = ((signal + rng.normal(0, 0.3, n)) > 0).astype(int)
    base = Table(
        {
            "id": ids,
            "a_key": a_key,
            "b_key": b_key,
            "weak": rng.normal(0, 1, n),
            "label": label,
        },
        name="base",
    )
    a = Table(
        {"a_key": a_key, "shared_key": shared, "a_noise": rng.normal(0, 1, n)},
        name="a",
    )
    b = Table(
        {"b_key": b_key, "shared_key": shared, "b_noise": rng.normal(0, 1, n)},
        name="b",
    )
    c = Table({"shared_key": shared, "signal": signal}, name="c")
    return DatasetRelationGraph.from_constraints(
        [base, a, b, c],
        [
            KFKConstraint("base", "a_key", "a", "a_key"),
            KFKConstraint("base", "b_key", "b", "b_key"),
            KFKConstraint("a", "shared_key", "c", "shared_key"),
            KFKConstraint("b", "shared_key", "c", "shared_key"),
        ],
    )


@pytest.fixture(scope="module")
def drg():
    return diamond_lake()


def run_discovery(drg, backend, policy, *, fault_seed=0, injector_kwargs=None,
                  **overrides):
    """One discovery run; returns ('ok', fingerprint) or ('raised', ...)."""
    kwargs = {"failure_probability": 0.3, "timeout_probability": 0.15,
              "seed": fault_seed}
    kwargs.update(injector_kwargs or {})
    config = AutoFeatConfig(
        sample_size=200,
        seed=1,
        parallel_backend=backend,
        max_workers=2,
        failure_policy=policy,
        max_retries=2,
        **overrides,
    )
    autofeat = AutoFeat(drg, config, fault_injector=FaultInjector(**kwargs))
    try:
        discovery = autofeat.discover("base", "label")
    except FaultError as exc:
        return ("raised", type(exc).__name__, str(exc))
    return (
        "ok",
        [
            (f.stage, f.error_kind, f.message, f.base_table, f.path, f.edge, f.retries)
            for f in discovery.failure_report.records
        ],
        [(r.path.describe(), r.score, r.selected_features)
         for r in discovery.ranked_paths],
    )


@pytest.mark.parametrize("backend", PARALLEL)
@pytest.mark.parametrize("policy", POLICIES)
@pytest.mark.parametrize("fault_seed", (0, 1, 2))
def test_30pct_fault_stress_matches_serial(drg, backend, policy, fault_seed):
    serial = run_discovery(drg, "serial", policy, fault_seed=fault_seed)
    parallel = run_discovery(drg, backend, policy, fault_seed=fault_seed)
    assert parallel == serial


@pytest.mark.parametrize("backend", PARALLEL)
@pytest.mark.parametrize("policy", ("skip_and_record", "retry"))
def test_error_budget_trips_exactly_once(drg, backend, policy):
    # Budget 0: the first recorded failure aborts the run.  Serial and
    # parallel must raise the *same* ErrorBudgetExceeded — same message,
    # same failure count, same last edge — which proves the budget is
    # shared at the merge point and tripped once, not once per worker.
    serial = run_discovery(drg, "serial", policy, error_budget=0)
    parallel = run_discovery(drg, backend, policy, error_budget=0)
    assert serial[0] == "raised"
    assert serial[1] == "ErrorBudgetExceeded"
    assert "1 failures exceed the budget of 0" in serial[2]
    assert parallel == serial


@pytest.mark.parametrize("backend", PARALLEL)
def test_budget_trip_is_typed_and_catchable(drg, backend):
    config = AutoFeatConfig(
        sample_size=200, seed=1, parallel_backend=backend, max_workers=2,
        failure_policy="skip_and_record", error_budget=0,
    )
    autofeat = AutoFeat(
        drg, config, fault_injector=FaultInjector(failure_probability=0.3, seed=0)
    )
    with pytest.raises(ErrorBudgetExceeded):
        autofeat.discover("base", "label")


@pytest.mark.parametrize("backend", PARALLEL)
@pytest.mark.parametrize("policy", POLICIES)
def test_same_seed_runs_are_reproducible(drg, backend, policy):
    first = run_discovery(drg, backend, policy, fault_seed=0)
    second = run_discovery(drg, backend, policy, fault_seed=0)
    assert first == second


@pytest.mark.parametrize("backend", PARALLEL)
def test_retry_with_transient_faults_recovers_cleanly(drg, backend):
    # recover_after=1: every injected fault clears on its first retry, so
    # the retry policy ends with an empty report and the full ranked set.
    clean = run_discovery(drg, "serial", "skip_and_record",
                          injector_kwargs={"failure_probability": 0.0,
                                           "timeout_probability": 0.0})
    recovered = run_discovery(drg, backend, "retry",
                              injector_kwargs={"recover_after": 1})
    assert recovered[0] == "ok"
    assert recovered[1] == []  # nothing recorded: all faults retried away
    assert recovered[2] == clean[2]


@pytest.mark.parametrize("backend", PARALLEL)
def test_unexpected_worker_exception_is_not_swallowed(drg, backend, monkeypatch):
    # A bug in the join kernel (anything outside JoinError/FaultError) must
    # re-raise on the coordinating thread, never turn into a skipped path.
    original = JoinEngine.apply_hop

    def exploding(self, current, edge, base_name, path=None):
        if edge.target == "c":
            raise RuntimeError("worker bug: corrupted index")
        return original(self, current, edge, base_name, path=path)

    monkeypatch.setattr(JoinEngine, "apply_hop", exploding)
    config = AutoFeatConfig(
        sample_size=200, seed=1, parallel_backend=backend, max_workers=2,
        failure_policy="skip_and_record",
    )
    with pytest.raises(RuntimeError, match="worker bug"):
        AutoFeat(drg, config).discover("base", "label")


@pytest.mark.parametrize("backend", PARALLEL)
def test_training_phase_fault_parity(drg, backend):
    def run(chosen_backend):
        config = AutoFeatConfig(
            sample_size=200, seed=1, parallel_backend=chosen_backend,
            max_workers=2, failure_policy="skip_and_record", top_k=3,
        )
        autofeat = AutoFeat(
            drg, config,
            fault_injector=FaultInjector(failure_probability=0.3, seed=0),
        )
        result = autofeat.augment("base", "label", model_name="random_forest")
        return (
            [(t.ranked.path.describe(), t.accuracy) for t in result.trained],
            [(f.stage, f.error_kind, f.message, f.path, f.retries)
             for f in result.failure_report.records],
        )

    assert run(backend) == run("serial")
