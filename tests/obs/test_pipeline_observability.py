"""End-to-end: every pipeline result carries a consistent run manifest."""

import numpy as np
import pytest

from repro.baselines import (
    run_arda,
    run_autofeat,
    run_base,
    run_join_all,
    run_mab,
)
from repro.core import AutoFeat, AutoFeatConfig
from repro.dataframe import Table
from repro.graph import DatasetRelationGraph, KFKConstraint
from repro.obs import validate_manifest


def diamond_lake(n=300, seed=3):
    rng = np.random.default_rng(seed)
    a_key = rng.permutation(n) + 1_000
    b_key = rng.permutation(n) + 5_000
    shared = rng.permutation(n) + 9_000
    signal = rng.normal(0, 1, n)
    label = ((signal + rng.normal(0, 0.3, n)) > 0).astype(int)
    base = Table(
        {
            "id": np.arange(n),
            "a_key": a_key,
            "b_key": b_key,
            "weak": rng.normal(0, 1, n),
            "label": label,
        },
        name="base",
    )
    a = Table(
        {"a_key": a_key, "shared_key": shared, "a_noise": rng.normal(0, 1, n)},
        name="a",
    )
    b = Table(
        {"b_key": b_key, "shared_key": shared, "b_noise": rng.normal(0, 1, n)},
        name="b",
    )
    c = Table({"shared_key": shared, "signal": signal}, name="c")
    return DatasetRelationGraph.from_constraints(
        [base, a, b, c],
        [
            KFKConstraint("base", "a_key", "a", "a_key"),
            KFKConstraint("base", "b_key", "b", "b_key"),
            KFKConstraint("a", "shared_key", "c", "shared_key"),
            KFKConstraint("b", "shared_key", "c", "shared_key"),
        ],
    )


@pytest.fixture(scope="module")
def drg():
    return diamond_lake()


CONFIG = AutoFeatConfig(sample_size=100, tau=0.0, top_k=2)


def assert_valid(manifest, total_seconds, stage):
    assert manifest is not None
    assert manifest.stage == stage
    assert validate_manifest(manifest.as_dict()) == []
    # the timing tree accounts for the run's wall clock within tolerance
    assert manifest.wall_seconds == pytest.approx(total_seconds, abs=1e-6)
    assert manifest.timing_total_seconds() == pytest.approx(
        total_seconds, rel=0.05, abs=0.02
    )
    assert all(s >= 0 for s in manifest.stage_seconds().values())


class TestAutoFeatManifests:
    def test_discovery_manifest(self, drg):
        discovery = AutoFeat(drg, CONFIG).discover("base", "label")
        manifest = discovery.run_manifest
        assert_valid(manifest, discovery.discovery_seconds, "discovery")
        # span-derived timings: selection time is part of discovery time
        assert (
            0
            <= discovery.feature_selection_seconds
            <= discovery.discovery_seconds
        )
        stages = manifest.stage_seconds()
        assert stages["selection"] == pytest.approx(
            discovery.feature_selection_seconds
        )
        counters = manifest.metrics["counters"]
        assert counters["discovery.paths_explored"] == discovery.n_paths_explored
        assert counters["engine.hops_executed"] == (
            discovery.engine_stats.hops_executed
        )
        # the engine emitted cache events into the hop spans
        assert any(
            e["name"] in ("cache_hit", "cache_miss") for e in manifest.events
        )

    def test_augment_manifest_composes_phases(self, drg):
        result = AutoFeat(drg, CONFIG).augment("base", "label", "knn")
        manifest = result.run_manifest
        assert_valid(manifest, result.total_seconds, "augment")
        stages = manifest.stage_seconds()
        assert "discover" in stages and "train" in stages
        assert stages["discover"] + stages["train"] == pytest.approx(
            result.total_seconds, abs=1e-6
        )
        assert "stages:" in result.summary()

    def test_untraced_run_still_manifests(self, drg):
        config = CONFIG.with_overrides(enable_tracing=False)
        result = AutoFeat(drg, config).augment("base", "label", "knn")
        manifest = result.run_manifest
        assert validate_manifest(manifest.as_dict()) == []
        stages = manifest.stage_seconds()
        assert stages  # never empty, even untraced
        assert {"augment", "discover", "train"} <= set(stages)
        assert result.discovery.feature_selection_seconds >= 0
        assert manifest.wall_seconds == pytest.approx(
            result.total_seconds, abs=1e-6
        )

    def test_traced_and_untraced_rankings_identical(self, drg):
        traced = AutoFeat(drg, CONFIG).discover("base", "label")
        untraced = AutoFeat(
            drg, CONFIG.with_overrides(enable_tracing=False)
        ).discover("base", "label")
        assert [
            (r.path.describe(), r.score, r.selected_features)
            for r in traced.ranked_paths
        ] == [
            (r.path.describe(), r.score, r.selected_features)
            for r in untraced.ranked_paths
        ]


class TestBaselineManifests:
    def test_base(self, drg):
        result = run_base(drg.table("base"), "label", "knn")
        assert_valid(result.run_manifest, result.total_seconds, "base")

    def test_join_all_with_filter(self, drg):
        result = run_join_all(drg, "base", "label", "knn", with_filter=True)
        assert_valid(result.run_manifest, result.total_seconds, "join_all")
        stages = result.run_manifest.stage_seconds()
        assert stages["selection"] == pytest.approx(
            result.feature_selection_seconds
        )

    def test_arda(self, drg):
        result = run_arda(drg, "base", "label", "knn")
        assert_valid(result.run_manifest, result.total_seconds, "arda")

    def test_mab(self, drg):
        result = run_mab(drg, "base", "label", "knn", budget=4)
        assert_valid(result.run_manifest, result.total_seconds, "mab")

    def test_autofeat_adapter(self, drg):
        result = run_autofeat(drg, "base", "label", "knn", config=CONFIG)
        assert_valid(result.run_manifest, result.total_seconds, "augment")

    def test_baselines_untraced_still_manifest(self, drg):
        base_table = drg.table("base")
        results = [
            run_base(base_table, "label", "knn", enable_tracing=False),
            run_join_all(
                drg, "base", "label", "knn",
                with_filter=True, enable_tracing=False,
            ),
            run_arda(drg, "base", "label", "knn", enable_tracing=False),
            run_mab(drg, "base", "label", "knn", budget=4, enable_tracing=False),
        ]
        for result in results:
            manifest = result.run_manifest
            assert validate_manifest(manifest.as_dict()) == []
            assert manifest.stage_seconds()
            assert manifest.wall_seconds == pytest.approx(
                result.total_seconds, abs=1e-6
            )
