"""Tracer: span nesting, timing invariants, events, no-op mode."""

import time

import pytest

from repro.obs import NULL_TRACER, Span, Tracer
from repro.obs.tracer import _NULL_SPAN


class TestSpanTree:
    def test_nesting_builds_tree(self):
        tracer = Tracer()
        with tracer.span("discover", base="b"):
            with tracer.span("hop", table="t"):
                with tracer.span("join"):
                    pass
                with tracer.span("selection"):
                    pass
            with tracer.span("hop", table="u"):
                pass
        root = tracer.root
        assert root.name == "discover"
        assert [c.name for c in root.children] == ["hop", "hop"]
        assert [c.name for c in root.children[0].children] == ["join", "selection"]
        assert tracer.n_spans() == 5

    def test_attrs_recorded(self):
        tracer = Tracer()
        with tracer.span("hop", table="loans", key="loan_id"):
            pass
        assert tracer.root.attrs == {"table": "loans", "key": "loan_id"}

    def test_current_tracks_innermost_open_span(self):
        tracer = Tracer()
        assert tracer.current is None
        with tracer.span("a"):
            assert tracer.current.name == "a"
            with tracer.span("b"):
                assert tracer.current.name == "b"
            assert tracer.current.name == "a"
        assert tracer.current is None

    def test_multiple_roots(self):
        tracer = Tracer()
        with tracer.span("first"):
            pass
        with tracer.span("second"):
            pass
        assert [r.name for r in tracer.roots] == ["first", "second"]
        assert tracer.root.name == "first"

    def test_exception_recorded_and_propagated(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("discover"):
                with tracer.span("hop"):
                    raise ValueError("boom")
        hop = tracer.root.children[0]
        assert hop.attrs["error"] == "ValueError"
        assert hop.finished
        assert tracer.root.finished
        assert tracer.current is None  # stack unwound


class TestTiming:
    def test_child_time_never_exceeds_parent(self):
        """Regression for the double-bookkeeping bug: timings derived from
        one span tree can never have a child outlast its parent, which the
        old parallel perf_counter accumulators could not guarantee."""
        tracer = Tracer()
        with tracer.span("parent"):
            for __ in range(3):
                with tracer.span("child"):
                    time.sleep(0.002)
        parent = tracer.root
        child_total = sum(c.seconds for c in parent.children)
        assert child_total <= parent.seconds
        assert parent.seconds > 0

    def test_duration_zero_while_open(self):
        tracer = Tracer()
        with tracer.span("open") as span:
            assert span.duration_ns == 0
            assert not span.finished
        assert span.finished
        assert span.duration_ns > 0

    def test_total_seconds_sums_same_named_spans(self):
        tracer = Tracer()
        with tracer.span("run"):
            with tracer.span("selection"):
                time.sleep(0.001)
            with tracer.span("selection"):
                time.sleep(0.001)
        total = tracer.total_seconds("selection")
        assert total == pytest.approx(
            sum(c.seconds for c in tracer.root.children)
        )
        assert 0 < total <= tracer.root.seconds

    def test_timing_tree_dict_shape(self):
        tracer = Tracer()
        with tracer.span("a", x=1):
            with tracer.span("b"):
                pass
        tree = tracer.timing_tree()
        assert tree["name"] == "a"
        assert tree["attrs"] == {"x": 1}
        assert tree["children"][0]["name"] == "b"
        assert tree["duration_ns"] >= tree["children"][0]["duration_ns"]


class TestEvents:
    def test_event_attaches_to_innermost_open_span(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                tracer.event("cache_hit", table="t")
        inner = tracer.root.children[0]
        assert inner.events[0]["name"] == "cache_hit"
        assert inner.events[0]["table"] == "t"
        assert inner.events[0]["t_ns"] > 0
        assert tracer.root.events == []

    def test_event_outside_any_span_is_dropped(self):
        tracer = Tracer()
        tracer.event("orphan")  # no crash, nowhere to attach
        assert tracer.roots == []


class TestNoOpMode:
    def test_disabled_tracer_returns_shared_null_span(self):
        tracer = Tracer(enabled=False)
        a = tracer.span("x", attr=1)
        b = tracer.span("y")
        assert a is b is _NULL_SPAN
        with a as span:
            assert span.seconds == 0.0
        assert tracer.roots == []
        assert tracer.timing_tree() == {}

    def test_disabled_event_is_noop(self):
        NULL_TRACER.event("anything", x=1)
        assert NULL_TRACER.n_spans() == 0

    def test_null_span_event_is_noop(self):
        _NULL_SPAN.event("e")
        assert _NULL_SPAN.events == ()

    def test_null_tracer_shared_instance_disabled(self):
        assert NULL_TRACER.enabled is False


class TestSpanStandalone:
    def test_span_without_tracer_still_times(self):
        with Span("lone") as span:
            time.sleep(0.001)
        assert span.seconds > 0

    def test_iter_spans_preorder(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                with tracer.span("c"):
                    pass
            with tracer.span("d"):
                pass
        assert [s.name for s in tracer.iter_spans()] == ["a", "b", "c", "d"]
