"""Observability of parallel runs: stitched spans, gauges, valid manifests.

Worker hop/path spans execute on pool threads or in worker processes, yet
the run manifest must stay one coherent tree: each wave span carries the
``parallel`` marker plus backend/worker attributes, worker spans are
grafted (and, for processes, rebased onto the coordinator's clock) as its
children, and the schema validator's concurrency-aware rule — max child
duration, not the sum, bounded by the parent — holds for every wave.
"""

import numpy as np
import pytest

from repro.core import AutoFeat, AutoFeatConfig
from repro.dataframe import Table
from repro.graph import DatasetRelationGraph, KFKConstraint
from repro.obs import validate_manifest

PARALLEL = ("threads", "processes")


def diamond_lake(n=300, seed=3):
    rng = np.random.default_rng(seed)
    a_key = rng.permutation(n) + 1_000
    b_key = rng.permutation(n) + 5_000
    shared = rng.permutation(n) + 9_000
    signal = rng.normal(0, 1, n)
    label = ((signal + rng.normal(0, 0.3, n)) > 0).astype(int)
    base = Table(
        {
            "id": np.arange(n),
            "a_key": a_key,
            "b_key": b_key,
            "weak": rng.normal(0, 1, n),
            "label": label,
        },
        name="base",
    )
    a = Table(
        {"a_key": a_key, "shared_key": shared, "a_noise": rng.normal(0, 1, n)},
        name="a",
    )
    b = Table(
        {"b_key": b_key, "shared_key": shared, "b_noise": rng.normal(0, 1, n)},
        name="b",
    )
    c = Table({"shared_key": shared, "signal": signal}, name="c")
    return DatasetRelationGraph.from_constraints(
        [base, a, b, c],
        [
            KFKConstraint("base", "a_key", "a", "a_key"),
            KFKConstraint("base", "b_key", "b", "b_key"),
            KFKConstraint("a", "shared_key", "c", "shared_key"),
            KFKConstraint("b", "shared_key", "c", "shared_key"),
        ],
    )


@pytest.fixture(scope="module")
def drg():
    return diamond_lake()


def config(backend, **overrides):
    return AutoFeatConfig(
        sample_size=100,
        tau=0.0,
        top_k=2,
        parallel_backend=backend,
        max_workers=2,
        **overrides,
    )


def iter_tree(node):
    if not node:
        return
    yield node
    for child in node.get("children", ()):
        yield from iter_tree(child)


def wave_nodes(manifest):
    return [
        node
        for node in iter_tree(manifest.timing)
        if node.get("attrs", {}).get("parallel")
    ]


@pytest.mark.parametrize("backend", PARALLEL)
class TestParallelDiscoveryManifest:
    def test_manifest_validates_against_schema(self, drg, backend):
        discovery = AutoFeat(drg, config(backend)).discover("base", "label")
        manifest = discovery.run_manifest
        assert validate_manifest(manifest.as_dict()) == []
        assert manifest.wall_seconds == pytest.approx(
            discovery.discovery_seconds, abs=1e-6
        )

    def test_wave_spans_carry_backend_attrs_and_worker_children(
        self, drg, backend
    ):
        discovery = AutoFeat(drg, config(backend)).discover("base", "label")
        waves = wave_nodes(discovery.run_manifest)
        assert waves, "parallel discovery must emit wave spans"
        for wave in waves:
            assert wave["name"] == "wave"
            assert wave["attrs"]["backend"] == backend
            assert wave["attrs"]["workers"] == 2
        # Worker hop spans are stitched back under their wave.
        grafted = [
            child["name"] for wave in waves for child in wave.get("children", ())
        ]
        assert "hop" in grafted

    def test_child_time_bounded_by_parent_time(self, drg, backend):
        # Concurrent children may *sum* past the parent's wall time, but no
        # single child can exceed it (1ms clock tolerance, as the schema
        # validator allows).
        discovery = AutoFeat(drg, config(backend)).discover("base", "label")
        for wave in wave_nodes(discovery.run_manifest):
            for child in wave.get("children", ()):
                assert child["duration_ns"] <= wave["duration_ns"] + 1_000_000

    def test_workers_used_gauge_recorded(self, drg, backend):
        discovery = AutoFeat(drg, config(backend)).discover("base", "label")
        gauges = discovery.run_manifest.metrics["gauges"]
        assert gauges["parallel.workers_used"] == 2
        assert gauges["parallel.speedup"] >= 0.0
        assert gauges["parallel.wall_seconds"] >= 0.0
        assert gauges["parallel.busy_seconds"] >= 0.0
        counters = discovery.run_manifest.metrics["counters"]
        assert counters["discovery.waves"] >= 1

    def test_augment_manifest_covers_both_phases(self, drg, backend):
        result = AutoFeat(drg, config(backend)).augment("base", "label", "knn")
        manifest = result.run_manifest
        assert validate_manifest(manifest.as_dict()) == []
        stages = manifest.stage_seconds()
        assert "discover" in stages and "train" in stages
        assert manifest.metrics["gauges"]["parallel.workers_used"] == 2
        # The training wave stitches per-path worker spans back in.
        names = {node["name"] for node in iter_tree(manifest.timing)}
        assert "path" in names


class TestSerialManifestUnchanged:
    def test_serial_run_has_no_parallel_gauges_or_waves(self, drg):
        discovery = AutoFeat(drg, config("serial")).discover("base", "label")
        manifest = discovery.run_manifest
        assert validate_manifest(manifest.as_dict()) == []
        assert wave_nodes(manifest) == []
        assert "parallel.workers_used" not in manifest.metrics.get("gauges", {})

    def test_untraced_parallel_run_still_manifests(self, drg):
        cfg = config("threads", enable_tracing=False)
        discovery = AutoFeat(drg, cfg).discover("base", "label")
        manifest = discovery.run_manifest
        assert validate_manifest(manifest.as_dict()) == []
        # Gauges survive without tracing; the timing tree collapses.
        assert manifest.metrics["gauges"]["parallel.workers_used"] == 2
