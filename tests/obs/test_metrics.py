"""MetricsRegistry instruments and the stats records that publish into it."""

import pytest

from repro.engine import ExecutionStats, FailureReport
from repro.engine.faults import FailureRecord
from repro.obs import MetricsRegistry
from repro.selection.stats import SelectionStats


class TestInstruments:
    def test_counter_monotonic(self):
        registry = MetricsRegistry()
        c = registry.counter("x")
        c.inc().inc(4)
        assert registry.value("x") == 5
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_gauge_last_value_wins(self):
        registry = MetricsRegistry()
        registry.gauge("g").set(1.5)
        registry.gauge("g").set(0.25)
        assert registry.value("g") == 0.25

    def test_histogram_streaming_summary(self):
        registry = MetricsRegistry()
        h = registry.histogram("h")
        for v in (1.0, 3.0, 2.0):
            h.observe(v)
        summary = registry.value("h")
        assert summary == {
            "count": 3, "total": 6.0, "min": 1.0, "max": 3.0, "mean": 2.0,
        }

    def test_empty_histogram_summary_is_zeroed(self):
        assert MetricsRegistry().histogram("h").summary()["count"] == 0

    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert len(registry) == 1

    def test_name_unique_across_kinds(self):
        registry = MetricsRegistry()
        registry.counter("n")
        with pytest.raises(ValueError):
            registry.gauge("n")
        with pytest.raises(ValueError):
            registry.histogram("n")

    def test_contains_and_unknown_value(self):
        registry = MetricsRegistry()
        registry.counter("known")
        assert "known" in registry
        assert "unknown" not in registry
        with pytest.raises(KeyError):
            registry.value("unknown")

    def test_as_dict_sorted_sections(self):
        registry = MetricsRegistry()
        registry.counter("b.z").inc(2)
        registry.counter("a.y").inc(1)
        registry.gauge("g").set(0.5)
        payload = registry.as_dict()
        assert list(payload["counters"]) == ["a.y", "b.z"]
        assert payload["gauges"] == {"g": 0.5}
        assert payload["histograms"] == {}


class TestExecutionStatsBridge:
    def test_publish_counters_and_hit_rate(self):
        stats = ExecutionStats(
            hops_executed=10, index_builds=4, cache_hits=6, cache_misses=2,
            rows_probed=1000,
        )
        registry = stats.publish(MetricsRegistry())
        assert registry.value("engine.hops_executed") == 10
        assert registry.value("engine.cache_hit_rate") == 0.75

    def test_as_dict_from_dict_round_trip(self):
        stats = ExecutionStats(
            hops_executed=3, index_builds=2, cache_hits=1, cache_misses=2,
            rows_probed=50,
        )
        restored = ExecutionStats.from_dict(stats.as_dict())
        assert restored == stats
        # derived fields are recomputed, not stored
        assert restored.cache_hit_rate == pytest.approx(1 / 3)

    def test_from_dict_missing_keys_default_to_zero(self):
        assert ExecutionStats.from_dict({}) == ExecutionStats()


class TestSelectionStatsBridge:
    def test_publish_and_round_trip(self):
        stats = SelectionStats(
            batches_scored=4, features_ranked=40, codes_cached=10,
            codes_reused=30, scalar_fallbacks=0,
        )
        registry = stats.publish(MetricsRegistry())
        assert registry.value("selection.features_ranked") == 40
        assert registry.value("selection.code_reuse_rate") == 0.75
        assert SelectionStats.from_dict(stats.as_dict()) == stats


class TestFailureReportBridge:
    def test_publish_counts_by_kind(self):
        report = FailureReport(
            records=(
                FailureRecord(stage="discovery", error_kind="HopBudgetExceeded",
                              message="m", base_table="b"),
                FailureRecord(stage="discovery", error_kind="HopBudgetExceeded",
                              message="m2", base_table="b"),
                FailureRecord(stage="training", error_kind="InjectedFaultError",
                              message="m3", base_table="b"),
            ),
            error_budget=8,
        )
        registry = report.publish(MetricsRegistry())
        assert registry.value("faults.recorded") == 3
        assert registry.value("faults.error_budget") == 8
        assert registry.value("faults.kind.HopBudgetExceeded") == 2
        assert registry.value("faults.kind.InjectedFaultError") == 1

    def test_empty_report_publishes_zero(self):
        registry = FailureReport().publish(MetricsRegistry())
        assert registry.value("faults.recorded") == 0
