"""RunManifest assembly, (de)serialisation, schema validation, exporters, CLI."""

import json

import pytest

from repro.dataframe import Table
from repro.obs import (
    MetricsRegistry,
    RunManifest,
    Tracer,
    build_manifest,
    chrome_trace_json,
    config_snapshot,
    dataset_fingerprint,
    flat_node,
    git_revision,
    render_text_report,
    synthetic_root,
    to_chrome_trace,
    validate_manifest,
)
from repro.obs.__main__ import main as obs_cli


def traced_manifest(**kwargs):
    tracer = Tracer()
    with tracer.span("discover", base="b"):
        with tracer.span("hop", table="t"):
            tracer.event("cache_miss", table="t")
        with tracer.span("selection"):
            pass
    registry = MetricsRegistry()
    registry.counter("engine.hops_executed").inc(1)
    return build_manifest("discovery", tracer=tracer, registry=registry, **kwargs)


class TestBuildManifest:
    def test_traced_build_carries_tree_metrics_events(self):
        manifest = traced_manifest(seed=7)
        assert manifest.stage == "discovery"
        assert manifest.seed == 7
        assert manifest.timing["name"] == "discover"
        assert manifest.metrics["counters"]["engine.hops_executed"] == 1
        assert manifest.n_events() == 1
        assert manifest.events[0]["span"] == "discover/hop"
        assert manifest.created_at  # stamped
        assert validate_manifest(manifest.as_dict()) == []

    def test_wall_seconds_defaults_to_root_duration(self):
        manifest = traced_manifest()
        assert manifest.wall_seconds == pytest.approx(
            manifest.timing_total_seconds()
        )

    def test_untraced_build_synthesises_single_node_tree(self):
        manifest = build_manifest(
            "discovery", tracer=Tracer(enabled=False), wall_seconds=1.5
        )
        assert manifest.timing["name"] == "discovery"
        assert manifest.timing["attrs"] == {"traced": False}
        assert manifest.stage_seconds() == {"discovery": pytest.approx(1.5)}
        assert validate_manifest(manifest.as_dict()) == []

    def test_stage_seconds_aggregates_same_named_spans(self):
        tracer = Tracer()
        with tracer.span("run"):
            with tracer.span("hop"):
                pass
            with tracer.span("hop"):
                pass
        manifest = build_manifest("x", tracer=tracer)
        stages = manifest.stage_seconds()
        assert set(stages) == {"run", "hop"}
        assert "hop=" in manifest.stage_summary()

    def test_dataset_fingerprint_and_config_embedded(self):
        table = Table({"a": [1, 2], "b": [3.0, 4.0]}, name="t")
        manifest = build_manifest(
            "x",
            tracer=Tracer(enabled=False),
            wall_seconds=0.1,
            dataset=[table],
            config={"tau": 0.65, "kappa": 15},
        )
        assert manifest.dataset_fingerprint == dataset_fingerprint([table])
        assert manifest.config == {"tau": 0.65, "kappa": 15}


class TestHelpers:
    def test_config_snapshot_stringifies_non_scalars(self):
        snap = config_snapshot({"a": 1, "b": None, "c": [1, 2], "d": "x"})
        assert snap == {"a": 1, "b": None, "c": "[1, 2]", "d": "x"}
        assert config_snapshot(None) == {}

    def test_dataset_fingerprint_order_invariant_and_shape_sensitive(self):
        t1 = Table({"a": [1, 2]}, name="t1")
        t2 = Table({"b": [1.0]}, name="t2")
        assert dataset_fingerprint([t1, t2]) == dataset_fingerprint([t2, t1])
        t1_wider = Table({"a": [1, 2], "z": [0, 0]}, name="t1")
        assert dataset_fingerprint([t1, t2]) != dataset_fingerprint([t1_wider, t2])

    def test_git_revision_resolves_this_repo(self):
        rev = git_revision()
        assert len(rev) == 12
        assert all(c in "0123456789abcdef" for c in rev)

    def test_flat_node_and_synthetic_root_compose(self):
        child_a = flat_node("discover", 1.0)
        child_b = flat_node("train", 0.5)
        root = synthetic_root("augment", [child_a, child_b])
        assert root["duration_ns"] == child_a["duration_ns"] + child_b["duration_ns"]
        manifest = build_manifest("augment", timing=root)
        assert manifest.stage_seconds()["augment"] == pytest.approx(1.5)
        assert validate_manifest(manifest.as_dict()) == []


class TestRoundTrip:
    def test_save_load_round_trip(self, tmp_path):
        manifest = traced_manifest(seed=3)
        path = manifest.save(tmp_path / "m.json")
        restored = RunManifest.load(path)
        assert restored == manifest

    def test_from_dict_tolerates_missing_optionals(self):
        manifest = RunManifest.from_dict({"stage": "x"})
        assert manifest.stage == "x"
        assert manifest.seed == 0
        assert manifest.timing == {}


class TestSchemaValidation:
    def test_rejects_missing_required_property(self):
        data = traced_manifest().as_dict()
        del data["stage"]
        assert any("stage" in e for e in validate_manifest(data))

    def test_rejects_empty_timing_tree(self):
        data = traced_manifest().as_dict()
        data["timing"] = {}
        assert any("missing" in e for e in validate_manifest(data))

    def test_rejects_negative_duration(self):
        data = traced_manifest().as_dict()
        data["timing"]["duration_ns"] = -5
        assert any("minimum" in e for e in validate_manifest(data))

    def test_rejects_children_overrunning_parent(self):
        data = traced_manifest().as_dict()
        data["timing"]["children"][0]["duration_ns"] = (
            data["timing"]["duration_ns"] + 10_000_000
        )
        assert any("exceeding" in e for e in validate_manifest(data))

    def test_rejects_wrong_types(self):
        data = traced_manifest().as_dict()
        data["wall_seconds"] = "fast"
        assert any("wall_seconds" in e for e in validate_manifest(data))


class TestExporters:
    def test_chrome_trace_structure(self):
        manifest = traced_manifest()
        trace = to_chrome_trace(manifest)
        events = trace["traceEvents"]
        spans = [e for e in events if e["ph"] == "X"]
        instants = [e for e in events if e["ph"] == "i"]
        assert [s["name"] for s in spans] == ["discover", "hop", "selection"]
        assert len(instants) == 1 and instants[0]["name"] == "cache_miss"
        # root starts at the origin; all timestamps are non-negative µs
        assert spans[0]["ts"] == 0.0
        assert all(e["ts"] >= 0 for e in events)
        json.loads(chrome_trace_json(manifest))  # loads cleanly

    def test_text_report_renders_tree_and_metrics(self):
        report = render_text_report(traced_manifest())
        assert "run manifest — stage=discovery" in report
        assert "timing tree" in report
        assert "engine.hops_executed" in report
        assert "cache_miss x1" in report

    def test_describe_is_text_report(self):
        manifest = traced_manifest()
        assert manifest.describe() == render_text_report(manifest)


class TestCLI:
    def test_text_json_chrome_and_validate(self, tmp_path, capsys):
        path = traced_manifest().save(tmp_path / "m.json")
        assert obs_cli([str(path)]) == 0
        assert "timing tree" in capsys.readouterr().out

        assert obs_cli([str(path), "--format", "json"]) == 0
        assert json.loads(capsys.readouterr().out)["stage"] == "discovery"

        chrome = tmp_path / "trace.json"
        assert obs_cli([str(path), "--chrome", str(chrome)]) == 0
        capsys.readouterr()
        assert json.loads(chrome.read_text())["traceEvents"]

        assert obs_cli([str(path), "--validate"]) == 0
        assert "valid" in capsys.readouterr().out

    def test_invalid_manifest_fails_validation(self, tmp_path, capsys):
        data = traced_manifest().as_dict()
        del data["timing"]
        path = tmp_path / "bad.json"
        path.write_text(json.dumps(data))
        assert obs_cli([str(path), "--validate"]) == 1
        assert "INVALID" in capsys.readouterr().err

    def test_unreadable_manifest_exits_2(self, tmp_path, capsys):
        path = tmp_path / "nope.json"
        assert obs_cli([str(path)]) == 2
        path.write_text("{not json")
        assert obs_cli([str(path)]) == 2
        capsys.readouterr()
