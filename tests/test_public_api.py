"""Contract tests on the public API surface and the error hierarchy."""

import pytest

import repro
from repro.errors import (
    ConfigError,
    DatasetError,
    DiscoveryError,
    GraphError,
    JoinError,
    ModelError,
    ReproError,
    SchemaError,
    SelectionError,
)


class TestTopLevelExports:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    @pytest.mark.parametrize(
        "name",
        [
            "AutoFeat",
            "AutoFeatConfig",
            "autofeat_augment",
            "Table",
            "Column",
            "DType",
            "DatasetRelationGraph",
            "KFKConstraint",
            "JoinPath",
            "DiscoveryResult",
            "AugmentationResult",
        ],
    )
    def test_name_exported(self, name):
        assert hasattr(repro, name)
        assert name in repro.__all__

    def test_all_entries_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            SchemaError,
            JoinError,
            GraphError,
            SelectionError,
            ModelError,
            DiscoveryError,
            ConfigError,
            DatasetError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)
        assert issubclass(exc, Exception)

    def test_one_except_clause_catches_everything(self):
        from repro.dataframe import Table

        with pytest.raises(ReproError):
            Table({"a": [1]}).column("missing")


class TestSubpackageExports:
    def test_subpackage_all_resolves(self):
        import repro.baselines
        import repro.bench
        import repro.core
        import repro.dataframe
        import repro.datasets
        import repro.discovery
        import repro.graph
        import repro.ml
        import repro.selection

        for module in (
            repro.core,
            repro.dataframe,
            repro.graph,
            repro.discovery,
            repro.selection,
            repro.ml,
            repro.baselines,
            repro.datasets,
            repro.bench,
        ):
            for name in module.__all__:
                assert hasattr(module, name), f"{module.__name__}.{name}"
