"""Unit tests for the tabular encoder and the AutoML wrapper."""

import numpy as np
import pytest

from repro.dataframe import Table
from repro.errors import ModelError
from repro.ml import (
    MODEL_REGISTRY,
    NON_TREE_MODELS,
    TREE_MODELS,
    AutoTabularPredictor,
    TabularEncoder,
    encode_labels,
    evaluate_accuracy,
)


@pytest.fixture
def table():
    rng = np.random.default_rng(0)
    n = 300
    signal = rng.normal(0, 1, n)
    return Table(
        {
            "num": signal,
            "with_nulls": np.where(rng.random(n) < 0.1, np.nan, signal),
            "cat": [["red", "green", "blue"][i % 3] for i in range(n)],
            "label": (signal > 0).astype(int),
        },
        name="t",
    )


class TestEncodeLabels:
    def test_contiguous_codes(self):
        encoded, classes = encode_labels(np.array(["b", "a", "b"], dtype=object))
        assert classes == ["a", "b"]
        assert list(encoded) == [1, 0, 1]

    def test_numeric_labels(self):
        encoded, classes = encode_labels(np.array([5, 2, 5], dtype=object))
        assert classes == [2, 5]
        assert list(encoded) == [1, 0, 1]


class TestTabularEncoder:
    def test_output_finite(self, table):
        X = TabularEncoder().fit_transform(table, ["num", "with_nulls", "cat"])
        assert np.isfinite(X).all()

    def test_string_encoding_deterministic(self, table):
        a = TabularEncoder().fit_transform(table, ["cat"])
        b = TabularEncoder().fit_transform(table, ["cat"])
        assert np.array_equal(a, b)

    def test_transform_consistent_on_new_rows(self, table):
        encoder = TabularEncoder().fit(table, ["cat"])
        head = table.head(10)
        X = encoder.transform(head)
        assert X.shape == (10, 1)

    def test_unseen_category_gets_new_code(self, table):
        encoder = TabularEncoder().fit(table, ["cat"])
        novel = Table({"cat": ["violet"]}, name="n")
        X = encoder.transform(novel)
        assert X[0, 0] == 3.0  # one past the 3 known categories

    def test_null_imputed_with_train_median(self):
        train = Table({"a": [1.0, 2.0, 3.0]}, name="train")
        encoder = TabularEncoder().fit(train, ["a"])
        test = Table({"a": [None]}, name="test")
        assert encoder.transform(test)[0, 0] == 2.0

    def test_unfitted_raises(self, table):
        with pytest.raises(ModelError):
            TabularEncoder().transform(table)

    def test_zero_features_raise(self, table):
        with pytest.raises(ModelError):
            TabularEncoder().fit(table, [])

    def test_feature_names_property(self, table):
        encoder = TabularEncoder().fit(table, ["num"])
        assert encoder.feature_names == ["num"]


class TestAutoTabularPredictor:
    def test_registry_covers_paper_models(self):
        assert set(TREE_MODELS) <= set(MODEL_REGISTRY)
        assert set(NON_TREE_MODELS) <= set(MODEL_REGISTRY)
        assert len(MODEL_REGISTRY) == 6

    def test_unknown_model_raises(self):
        with pytest.raises(ModelError):
            AutoTabularPredictor("catboost")

    def test_evaluate_returns_result(self, table):
        result = AutoTabularPredictor("lightgbm", seed=0).evaluate(table, "label")
        assert 0.5 < result.accuracy <= 1.0
        assert result.n_train + result.n_test == table.n_rows
        assert result.n_features == 3

    def test_feature_subset_used(self, table):
        result = AutoTabularPredictor("lightgbm", seed=0).evaluate(
            table, "label", feature_names=["num"]
        )
        assert result.feature_names == ("num",)

    def test_label_excluded_from_features(self, table):
        result = AutoTabularPredictor("lightgbm", seed=0).evaluate(
            table, "label", feature_names=["num", "label"]
        )
        assert "label" not in result.feature_names

    def test_missing_label_raises(self, table):
        with pytest.raises(ModelError):
            AutoTabularPredictor().evaluate(table, "nope")

    def test_null_labels_raise(self):
        t = Table({"x": [1.0, 2.0], "label": [0, None]}, name="t")
        with pytest.raises(ModelError):
            AutoTabularPredictor().evaluate(t, "label")

    def test_fit_predict_roundtrip(self, table):
        predictor = AutoTabularPredictor("lightgbm", seed=0).fit(table, "label")
        predictions = predictor.predict(table.head(20))
        assert len(predictions) == 20
        assert set(predictions) <= {0, 1}

    def test_predict_before_fit_raises(self, table):
        with pytest.raises(ModelError):
            AutoTabularPredictor().predict(table)

    def test_no_features_raises(self):
        t = Table({"label": [0, 1]}, name="t")
        with pytest.raises(ModelError):
            AutoTabularPredictor().evaluate(t, "label")

    @pytest.mark.parametrize("model", sorted(MODEL_REGISTRY))
    def test_every_model_beats_chance(self, model, table):
        acc = evaluate_accuracy(table, "label", model, seed=0)
        assert acc > 0.7

    def test_deterministic_given_seed(self, table):
        a = evaluate_accuracy(table, "label", "lightgbm", seed=3)
        b = evaluate_accuracy(table, "label", "lightgbm", seed=3)
        assert a == b
