"""Unit tests for KNN and L1 logistic regression."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.ml import KNeighborsClassifier, LogisticRegressionL1


def make_data(n=400, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.normal(0, 1, (n, 3))
    y = ((X[:, 0] + X[:, 1]) > 0).astype(np.int64)
    return X, y


class TestKNN:
    def test_learns_signal(self):
        X, y = make_data()
        model = KNeighborsClassifier(n_neighbors=5).fit(X, y)
        assert np.mean(model.predict(X) == y) > 0.85

    def test_one_neighbor_memorises(self):
        X, y = make_data(100)
        model = KNeighborsClassifier(n_neighbors=1).fit(X, y)
        assert np.mean(model.predict(X) == y) == 1.0

    def test_scale_invariance_via_standardisation(self):
        X, y = make_data()
        scaled = X.copy()
        scaled[:, 0] *= 1000  # blow up one dimension
        plain = KNeighborsClassifier(5).fit(X, y).predict(X)
        blown = KNeighborsClassifier(5).fit(scaled, y).predict(scaled)
        assert np.mean(plain == blown) > 0.95

    def test_degrades_with_noise_dimensions(self):
        # The curse of dimensionality the paper leans on for Figures 5/7.
        rng = np.random.default_rng(1)
        X, y = make_data(300, seed=1)
        X_train, X_test, y_train, y_test = X[:200], X[200:], y[:200], y[200:]
        clean = KNeighborsClassifier(5).fit(X_train, y_train)
        clean_acc = np.mean(clean.predict(X_test) == y_test)
        noisy_train = np.hstack([X_train, rng.normal(0, 1, (200, 40))])
        noisy_test = np.hstack([X_test, rng.normal(0, 1, (100, 40))])
        noisy = KNeighborsClassifier(5).fit(noisy_train, y_train)
        noisy_acc = np.mean(noisy.predict(noisy_test) == y_test)
        assert noisy_acc < clean_acc

    def test_proba_shape(self):
        X, y = make_data(100)
        proba = KNeighborsClassifier(3).fit(X, y).predict_proba(X)
        assert proba.shape == (100, 2)
        assert np.allclose(proba.sum(axis=1), 1.0)

    def test_k_capped_at_train_size(self):
        X, y = make_data(10)
        model = KNeighborsClassifier(n_neighbors=50).fit(X, y)
        assert model.predict(X).shape == (10,)

    def test_invalid_k_raises(self):
        with pytest.raises(ModelError):
            KNeighborsClassifier(0)

    def test_unfitted_raises(self):
        with pytest.raises(ModelError):
            KNeighborsClassifier().predict(np.zeros((1, 3)))

    def test_empty_fit_raises(self):
        with pytest.raises(ModelError):
            KNeighborsClassifier().fit(np.zeros((0, 2)), np.zeros(0))


class TestLogisticL1:
    def test_learns_signal(self):
        X, y = make_data()
        model = LogisticRegressionL1(alpha=0.001).fit(X, y)
        assert np.mean(model.predict(X) == y) > 0.9

    def test_l1_zeroes_noise_coefficients(self):
        rng = np.random.default_rng(2)
        n = 500
        signal = rng.normal(0, 1, n)
        y = (signal > 0).astype(np.int64)
        X = np.column_stack([signal, rng.normal(0, 1, (n, 6))])
        model = LogisticRegressionL1(alpha=0.05, max_iter=800).fit(X, y)
        coef = model.coefficients[0]
        assert abs(coef[0]) > 0.5
        assert np.sum(np.abs(coef[1:]) < 1e-3) >= 4  # most noise weights zeroed

    def test_stronger_alpha_sparser(self):
        X, y = make_data()
        weak = LogisticRegressionL1(alpha=0.001).fit(X, y)
        strong = LogisticRegressionL1(alpha=0.3).fit(X, y)
        weak_nonzero = np.sum(np.abs(weak.coefficients) > 1e-6)
        strong_nonzero = np.sum(np.abs(strong.coefficients) > 1e-6)
        assert strong_nonzero <= weak_nonzero

    def test_multiclass(self):
        rng = np.random.default_rng(3)
        X = rng.normal(0, 1, (300, 2))
        y = (X[:, 0] > 0).astype(int) + 2 * (X[:, 1] > 0).astype(int)
        model = LogisticRegressionL1(alpha=0.001).fit(X, y)
        assert model.predict_proba(X).shape == (300, 4)
        assert np.mean(model.predict(X) == y) > 0.85

    def test_negative_alpha_raises(self):
        with pytest.raises(ModelError):
            LogisticRegressionL1(alpha=-1)

    def test_unfitted_raises(self):
        with pytest.raises(ModelError):
            LogisticRegressionL1().predict(np.zeros((1, 2)))

    def test_proba_normalised(self):
        X, y = make_data(200)
        proba = LogisticRegressionL1().fit(X, y).predict_proba(X)
        assert np.allclose(proba.sum(axis=1), 1.0)
