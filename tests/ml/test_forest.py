"""Unit tests for the forest ensembles."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.ml import ExtraTreesClassifier, RandomForestClassifier


def make_data(n=500, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.normal(0, 1, (n, 4))
    y = ((X[:, 0] + X[:, 1]) > 0).astype(np.int64)
    return X, y


@pytest.mark.parametrize("cls", [RandomForestClassifier, ExtraTreesClassifier])
class TestForests:
    def test_learns_signal(self, cls):
        X, y = make_data()
        model = cls(n_estimators=20, seed=0).fit(X, y)
        assert np.mean(model.predict(X) == y) > 0.85

    def test_proba_normalised(self, cls):
        X, y = make_data()
        proba = cls(n_estimators=10, seed=0).fit(X, y).predict_proba(X)
        assert np.allclose(proba.sum(axis=1), 1.0)

    def test_deterministic_per_seed(self, cls):
        X, y = make_data()
        a = cls(n_estimators=8, seed=5).fit(X, y).predict(X)
        b = cls(n_estimators=8, seed=5).fit(X, y).predict(X)
        assert np.array_equal(a, b)

    def test_seed_changes_model(self, cls):
        X, y = make_data()
        a = cls(n_estimators=8, seed=1).fit(X, y).predict_proba(X)
        b = cls(n_estimators=8, seed=2).fit(X, y).predict_proba(X)
        assert not np.allclose(a, b)

    def test_unfitted_raises(self, cls):
        with pytest.raises(ModelError):
            cls().predict(np.zeros((1, 4)))

    def test_invalid_estimators_raise(self, cls):
        with pytest.raises(ModelError):
            cls(n_estimators=0)

    def test_feature_importances(self, cls):
        X, y = make_data()
        model = cls(n_estimators=15, seed=0).fit(X, y)
        importances = model.feature_importances_
        assert importances.shape == (4,)
        # Signal features (0, 1) dominate the noise features (2, 3).
        assert importances[:2].sum() > importances[2:].sum()

    def test_multiclass_rare_class_survives_bootstrap(self, cls):
        rng = np.random.default_rng(3)
        X = rng.normal(0, 1, (120, 2))
        y = np.zeros(120, dtype=np.int64)
        y[X[:, 0] > 0.5] = 1
        y[:3] = 2  # very rare class
        model = cls(n_estimators=10, seed=0).fit(X, y)
        assert model.predict_proba(X).shape == (120, 3)


class TestEnsembleBenefit:
    def test_forest_beats_single_noisy_tree_on_holdout(self):
        rng = np.random.default_rng(7)
        n = 600
        X = rng.normal(0, 1, (n, 8))
        y = ((X[:, 0] + 0.8 * X[:, 1] + rng.normal(0, 0.8, n)) > 0).astype(int)
        X_train, X_test = X[:400], X[400:]
        y_train, y_test = y[:400], y[400:]
        forest = RandomForestClassifier(n_estimators=40, seed=0).fit(X_train, y_train)
        from repro.ml import DecisionTreeClassifier

        tree = DecisionTreeClassifier(max_depth=12).fit(X_train, y_train)
        forest_acc = np.mean(forest.predict(X_test) == y_test)
        tree_acc = np.mean(tree.predict(X_test) == y_test)
        assert forest_acc >= tree_acc - 0.02
