"""Unit tests for cross-validation and AUC evaluation."""

import numpy as np
import pytest

from repro.dataframe import Table
from repro.errors import ModelError
from repro.ml import cross_validate, evaluate_auc


@pytest.fixture(scope="module")
def table():
    rng = np.random.default_rng(0)
    n = 400
    signal = rng.normal(0, 1, n)
    return Table(
        {
            "signal": signal,
            "noise": rng.normal(0, 1, n),
            "label": (signal + rng.normal(0, 0.5, n) > 0).astype(int),
        },
        name="t",
    )


class TestCrossValidate:
    def test_fold_count(self, table):
        result = cross_validate(table, "label", n_folds=4, seed=0)
        assert result.n_folds == 4

    def test_learns_signal(self, table):
        result = cross_validate(table, "label", n_folds=3, seed=0)
        assert result.mean > 0.75

    def test_std_computed(self, table):
        result = cross_validate(table, "label", n_folds=3, seed=0)
        assert result.std >= 0.0

    def test_deterministic(self, table):
        a = cross_validate(table, "label", n_folds=3, seed=7)
        b = cross_validate(table, "label", n_folds=3, seed=7)
        assert a.fold_accuracies == b.fold_accuracies

    def test_feature_subset(self, table):
        full = cross_validate(table, "label", n_folds=3, seed=0)
        noise_only = cross_validate(
            table, "label", feature_names=["noise"], n_folds=3, seed=0
        )
        assert full.mean > noise_only.mean

    def test_too_few_folds_raise(self, table):
        with pytest.raises(ModelError):
            cross_validate(table, "label", n_folds=1)

    def test_unknown_model_raises(self, table):
        with pytest.raises(ModelError):
            cross_validate(table, "label", model_name="tabnet")

    def test_null_labels_raise(self):
        t = Table({"x": [1.0, 2.0], "label": [1, None]}, name="t")
        with pytest.raises(ModelError):
            cross_validate(t, "label")

    def test_stratification_keeps_classes_per_fold(self):
        rng = np.random.default_rng(1)
        n = 90
        label = np.zeros(n, dtype=int)
        label[:12] = 1
        t = Table({"x": rng.normal(0, 1, n), "label": label}, name="t")
        result = cross_validate(t, "label", n_folds=3, seed=0)
        # Each fold has rare-class rows, so every fold can be scored.
        assert result.n_folds == 3


class TestEvaluateAuc:
    def test_signal_gives_high_auc(self, table):
        assert evaluate_auc(table, "label", seed=0) > 0.8

    def test_noise_gives_chance_auc(self, table):
        auc = evaluate_auc(table, "label", feature_names=["noise"], seed=0)
        assert auc == pytest.approx(0.5, abs=0.15)

    def test_multiclass_rejected(self):
        t = Table({"x": [1.0, 2.0, 3.0] * 10, "label": [0, 1, 2] * 10}, name="t")
        with pytest.raises(ModelError, match="binary"):
            evaluate_auc(t, "label")

    def test_deterministic(self, table):
        assert evaluate_auc(table, "label", seed=3) == evaluate_auc(
            table, "label", seed=3
        )
