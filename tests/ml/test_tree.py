"""Unit tests for the CART trees."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.ml import DecisionTreeClassifier, DecisionTreeRegressor


def separable(n=400, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.normal(0, 1, (n, 3))
    y = (X[:, 0] + 0.5 * X[:, 1] > 0).astype(np.int64)
    return X, y


class TestClassifier:
    def test_fits_separable_data(self):
        X, y = separable()
        tree = DecisionTreeClassifier(max_depth=6).fit(X, y)
        assert np.mean(tree.predict(X) == y) > 0.9

    def test_predict_proba_rows_sum_to_one(self):
        X, y = separable()
        proba = DecisionTreeClassifier().fit(X, y).predict_proba(X)
        assert np.allclose(proba.sum(axis=1), 1.0)

    def test_pure_node_is_leaf(self):
        X = np.zeros((10, 1))
        y = np.zeros(10, dtype=np.int64)
        tree = DecisionTreeClassifier().fit(X, y)
        assert tree.depth == 0
        assert tree.n_leaves == 1

    def test_max_depth_respected(self):
        X, y = separable(600)
        tree = DecisionTreeClassifier(max_depth=2).fit(X, y)
        assert tree.depth <= 2

    def test_min_samples_leaf(self):
        X, y = separable(100)
        tree = DecisionTreeClassifier(min_samples_leaf=40).fit(X, y)
        # Each leaf holds >= 40 of 100 samples, so at most 2 leaves.
        assert tree.n_leaves <= 2

    def test_multiclass(self):
        rng = np.random.default_rng(1)
        X = rng.normal(0, 1, (300, 2))
        y = (X[:, 0] > 0).astype(int) + 2 * (X[:, 1] > 0).astype(int)
        tree = DecisionTreeClassifier(max_depth=4).fit(X, y)
        assert tree.predict_proba(X).shape == (300, 4)
        assert np.mean(tree.predict(X) == y) > 0.9

    def test_feature_importances_point_at_signal(self):
        X, y = separable()
        tree = DecisionTreeClassifier(max_depth=5).fit(X, y)
        importances = tree.feature_importances_
        assert importances.shape == (3,)
        assert importances.sum() == pytest.approx(1.0)
        assert importances[0] > importances[2]

    def test_unfitted_raises(self):
        with pytest.raises(ModelError):
            DecisionTreeClassifier().predict(np.zeros((1, 2)))

    def test_nan_input_raises(self):
        X = np.array([[np.nan], [1.0]])
        with pytest.raises(ModelError):
            DecisionTreeClassifier().fit(X, np.array([0, 1]))

    def test_shape_mismatch_raises(self):
        with pytest.raises(ModelError):
            DecisionTreeClassifier().fit(np.zeros((3, 1)), np.zeros(2))

    def test_negative_labels_raise(self):
        with pytest.raises(ModelError):
            DecisionTreeClassifier().fit(np.zeros((2, 1)), np.array([-1, 0]))

    def test_invalid_params_raise(self):
        with pytest.raises(ModelError):
            DecisionTreeClassifier(max_depth=0)
        with pytest.raises(ModelError):
            DecisionTreeClassifier(min_samples_leaf=0)

    def test_max_features_subsampling_deterministic(self):
        X, y = separable()
        a = DecisionTreeClassifier(max_features="sqrt", seed=3).fit(X, y)
        b = DecisionTreeClassifier(max_features="sqrt", seed=3).fit(X, y)
        assert np.array_equal(a.predict(X), b.predict(X))

    def test_random_thresholds_variant(self):
        X, y = separable()
        tree = DecisionTreeClassifier(random_thresholds=True, seed=0).fit(X, y)
        assert np.mean(tree.predict(X) == y) > 0.8

    def test_constant_features_yield_stump(self):
        X = np.ones((50, 2))
        y = np.array([0, 1] * 25)
        tree = DecisionTreeClassifier().fit(X, y)
        assert tree.n_leaves == 1


class TestRegressor:
    def test_fits_linear_signal(self):
        rng = np.random.default_rng(2)
        X = rng.uniform(-1, 1, (500, 2))
        y = 3 * X[:, 0] + rng.normal(0, 0.05, 500)
        tree = DecisionTreeRegressor(max_depth=8).fit(X, y)
        pred = tree.predict(X)
        assert np.corrcoef(pred, y)[0, 1] > 0.95

    def test_leaf_value_is_mean(self):
        X = np.zeros((4, 1))
        y = np.array([1.0, 2.0, 3.0, 4.0])
        tree = DecisionTreeRegressor().fit(X, y)
        assert tree.predict(X)[0] == pytest.approx(2.5)

    def test_max_depth_respected(self):
        rng = np.random.default_rng(3)
        X = rng.normal(0, 1, (200, 1))
        y = rng.normal(0, 1, 200)
        assert DecisionTreeRegressor(max_depth=3).fit(X, y).depth <= 3

    def test_importances_available(self):
        rng = np.random.default_rng(4)
        X = rng.normal(0, 1, (200, 2))
        y = X[:, 1] * 2
        tree = DecisionTreeRegressor(max_depth=4).fit(X, y)
        assert tree.feature_importances_[1] > tree.feature_importances_[0]
