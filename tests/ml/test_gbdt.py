"""Unit tests for histogram gradient boosting."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.ml import (
    GradientBoostingBinaryClassifier,
    LightGBMClassifier,
    XGBoostClassifier,
)


def make_data(n=600, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.normal(0, 1, (n, 5))
    y = ((X[:, 0] - 0.7 * X[:, 2]) > 0).astype(np.int64)
    return X, y


def make_nonlinear(n=800, seed=1):
    rng = np.random.default_rng(seed)
    X = rng.uniform(-1, 1, (n, 2))
    y = ((X[:, 0] * X[:, 1]) > 0).astype(np.int64)  # XOR-like
    return X, y


class TestBinaryBooster:
    def test_learns_linear_signal(self):
        X, y = make_data()
        model = GradientBoostingBinaryClassifier(n_estimators=30).fit(X, y)
        assert np.mean(model.predict(X) == y) > 0.93

    def test_learns_nonlinear_signal(self):
        X, y = make_nonlinear()
        model = GradientBoostingBinaryClassifier(n_estimators=40).fit(X, y)
        assert np.mean(model.predict(X) == y) > 0.9

    def test_proba_in_unit_interval(self):
        X, y = make_data()
        proba = GradientBoostingBinaryClassifier(n_estimators=10).fit(X, y).predict_proba(X)
        assert (proba >= 0).all() and (proba <= 1).all()
        assert np.allclose(proba.sum(axis=1), 1.0)

    def test_more_rounds_reduce_training_error(self):
        X, y = make_nonlinear()
        few = GradientBoostingBinaryClassifier(n_estimators=3).fit(X, y)
        many = GradientBoostingBinaryClassifier(n_estimators=50).fit(X, y)
        assert np.mean(many.predict(X) == y) >= np.mean(few.predict(X) == y)

    def test_depth_wise_growth(self):
        X, y = make_data()
        model = GradientBoostingBinaryClassifier(
            n_estimators=20, growth="depth_wise", max_depth=3
        ).fit(X, y)
        assert np.mean(model.predict(X) == y) > 0.9

    def test_invalid_growth_raises(self):
        with pytest.raises(ModelError):
            GradientBoostingBinaryClassifier(growth="sideways")

    def test_invalid_estimators_raise(self):
        with pytest.raises(ModelError):
            GradientBoostingBinaryClassifier(n_estimators=0)

    def test_unfitted_raises(self):
        with pytest.raises(ModelError):
            GradientBoostingBinaryClassifier().predict(np.zeros((1, 2)))

    def test_nan_raises(self):
        with pytest.raises(ModelError):
            GradientBoostingBinaryClassifier().fit(
                np.array([[np.nan]]), np.array([0.0])
            )

    def test_single_class_training(self):
        X = np.random.default_rng(0).normal(0, 1, (50, 2))
        y = np.zeros(50)
        model = GradientBoostingBinaryClassifier(n_estimators=3).fit(X, y)
        assert (model.predict(X) == 0).all()

    def test_max_leaves_bounds_tree_size(self):
        X, y = make_nonlinear()
        model = GradientBoostingBinaryClassifier(n_estimators=1, max_leaves=4).fit(X, y)
        assert model._trees[0].n_leaves <= 4


@pytest.mark.parametrize("cls", [LightGBMClassifier, XGBoostClassifier])
class TestWrappers:
    def test_binary(self, cls):
        X, y = make_data()
        model = cls(n_estimators=20).fit(X, y)
        assert np.mean(model.predict(X) == y) > 0.9

    def test_multiclass_one_vs_rest(self, cls):
        rng = np.random.default_rng(5)
        X = rng.normal(0, 1, (400, 2))
        y = (X[:, 0] > 0).astype(int) + 2 * (X[:, 1] > 0).astype(int)
        model = cls(n_estimators=15).fit(X, y)
        proba = model.predict_proba(X)
        assert proba.shape == (400, 4)
        assert np.allclose(proba.sum(axis=1), 1.0)
        assert np.mean(model.predict(X) == y) > 0.85

    def test_unfitted_raises(self, cls):
        with pytest.raises(ModelError):
            cls().predict_proba(np.zeros((1, 2)))


class TestGrowthStrategiesDiffer:
    def test_leaf_wise_and_depth_wise_give_different_models(self):
        X, y = make_nonlinear()
        leaf = LightGBMClassifier(n_estimators=5, max_leaves=6).fit(X, y)
        depth = XGBoostClassifier(n_estimators=5, max_depth=2).fit(X, y)
        assert not np.allclose(leaf.predict_proba(X), depth.predict_proba(X))


class TestFeatureImportances:
    def test_signal_feature_dominates(self):
        X, y = make_data()
        model = LightGBMClassifier(n_estimators=10).fit(X, y)
        importances = model.feature_importances_
        assert importances.shape == (5,)
        assert importances.sum() == pytest.approx(1.0)
        # Signal lives in features 0 and 2.
        assert importances[0] + importances[2] > 0.8

    def test_depth_wise_importances(self):
        X, y = make_data()
        model = XGBoostClassifier(n_estimators=10).fit(X, y)
        assert model.feature_importances_.sum() == pytest.approx(1.0)

    def test_unfitted_raises(self):
        with pytest.raises(ModelError):
            LightGBMClassifier().feature_importances_
