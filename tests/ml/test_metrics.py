"""Unit tests for classification metrics."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.ml import accuracy, auc_score, confusion_counts, f1_score


class TestAccuracy:
    def test_perfect(self):
        assert accuracy(np.array([1, 0, 1]), np.array([1, 0, 1])) == 1.0

    def test_half(self):
        assert accuracy(np.array([1, 0]), np.array([1, 1])) == 0.5

    def test_empty_raises(self):
        with pytest.raises(ModelError):
            accuracy(np.array([]), np.array([]))

    def test_shape_mismatch_raises(self):
        with pytest.raises(ModelError):
            accuracy(np.array([1]), np.array([1, 2]))


class TestAUC:
    def test_perfect_ranking(self):
        y = np.array([0, 0, 1, 1])
        scores = np.array([0.1, 0.2, 0.8, 0.9])
        assert auc_score(y, scores) == 1.0

    def test_inverted_ranking(self):
        y = np.array([0, 0, 1, 1])
        scores = np.array([0.9, 0.8, 0.2, 0.1])
        assert auc_score(y, scores) == 0.0

    def test_random_is_half(self):
        rng = np.random.default_rng(0)
        y = rng.integers(0, 2, 4000)
        scores = rng.random(4000)
        assert auc_score(y, scores) == pytest.approx(0.5, abs=0.03)

    def test_ties_averaged(self):
        y = np.array([0, 1])
        scores = np.array([0.5, 0.5])
        assert auc_score(y, scores) == 0.5

    def test_single_class_is_half(self):
        assert auc_score(np.zeros(5), np.arange(5)) == 0.5


class TestConfusionAndF1:
    def test_counts(self):
        y_true = np.array([1, 1, 0, 0, 1])
        y_pred = np.array([1, 0, 0, 1, 1])
        assert confusion_counts(y_true, y_pred) == (2, 1, 1, 1)

    def test_f1_known_value(self):
        y_true = np.array([1, 1, 0, 0, 1])
        y_pred = np.array([1, 0, 0, 1, 1])
        # precision 2/3, recall 2/3 -> f1 = 2/3.
        assert f1_score(y_true, y_pred) == pytest.approx(2 / 3)

    def test_f1_no_positives(self):
        assert f1_score(np.zeros(4), np.zeros(4)) == 0.0

    def test_custom_positive_label(self):
        y_true = np.array(["a", "b", "a"])
        y_pred = np.array(["a", "a", "a"])
        assert f1_score(y_true, y_pred, positive_label="a") == pytest.approx(0.8)
