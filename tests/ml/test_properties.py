"""Property-based tests on the ML substrate's behavioural contracts."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml import (
    DecisionTreeClassifier,
    KNeighborsClassifier,
    LightGBMClassifier,
    LogisticRegressionL1,
    RandomForestClassifier,
)

MODELS = [
    lambda: DecisionTreeClassifier(max_depth=4),
    lambda: RandomForestClassifier(n_estimators=5, max_depth=4, seed=0),
    lambda: LightGBMClassifier(n_estimators=5),
    lambda: KNeighborsClassifier(3),
    lambda: LogisticRegressionL1(max_iter=50),
]


@st.composite
def small_problem(draw):
    n = draw(st.integers(min_value=12, max_value=60))
    d = draw(st.integers(min_value=1, max_value=4))
    seed = draw(st.integers(min_value=0, max_value=999))
    rng = np.random.default_rng(seed)
    X = rng.normal(0, 1, (n, d))
    y = rng.integers(0, 2, n)
    y[0], y[1] = 0, 1  # guarantee both classes exist
    return X, y.astype(np.int64)


@pytest.mark.parametrize("factory", MODELS)
@given(problem=small_problem())
@settings(max_examples=15, deadline=None)
def test_predict_proba_is_distribution(factory, problem):
    X, y = problem
    model = factory()
    model.fit(X, y)
    proba = model.predict_proba(X)
    assert proba.shape == (len(y), 2)
    assert (proba >= -1e-9).all()
    assert np.allclose(proba.sum(axis=1), 1.0, atol=1e-9)


@pytest.mark.parametrize("factory", MODELS)
@given(problem=small_problem())
@settings(max_examples=10, deadline=None)
def test_predict_consistent_with_proba(factory, problem):
    X, y = problem
    model = factory()
    model.fit(X, y)
    proba = model.predict_proba(X)
    hard = model.predict(X)
    # Predicted class always has maximal probability (ties tolerated).
    chosen = proba[np.arange(len(hard)), hard]
    assert (chosen >= proba.max(axis=1) - 1e-9).all()


@pytest.mark.parametrize("factory", MODELS)
@given(problem=small_problem())
@settings(max_examples=10, deadline=None)
def test_refit_is_deterministic(factory, problem):
    X, y = problem
    a = factory()
    b = factory()
    a.fit(X, y)
    b.fit(X, y)
    assert np.allclose(a.predict_proba(X), b.predict_proba(X))


@given(problem=small_problem(), shift=st.floats(min_value=-5, max_value=5))
@settings(max_examples=15, deadline=None)
def test_tree_invariant_to_feature_shift(problem, shift):
    """CART splits depend only on value order; shifting features is a no-op."""
    X, y = problem
    base = DecisionTreeClassifier(max_depth=4).fit(X, y).predict(X)
    shifted = DecisionTreeClassifier(max_depth=4).fit(X + shift, y).predict(X + shift)
    assert np.array_equal(base, shifted)
