"""Unit tests for the Lazo-style LSH matcher and the distribution matcher."""

import numpy as np
import pytest

from repro.dataframe import Column, Table
from repro.discovery import (
    DistributionMatcher,
    LazoMatcher,
    QuantileSketch,
    estimate_containment,
    quantile_similarity,
)
from repro.errors import DiscoveryError
from repro.graph import DatasetRelationGraph


@pytest.fixture(scope="module")
def tables():
    rng = np.random.default_rng(0)
    n = 400
    ids = np.arange(n)
    left = Table(
        {"user_id": ids, "score": rng.normal(50, 10, n)}, name="left"
    )
    right = Table(
        {"uid": ids, "other": rng.integers(10_000, 20_000, n)}, name="right"
    )
    return left, right


class TestEstimateContainment:
    def test_identical_sets(self):
        assert estimate_containment(1.0, 100, 100) == 1.0

    def test_zero_jaccard(self):
        assert estimate_containment(0.0, 100, 100) == 0.0

    def test_negative_jaccard_treated_as_disjoint(self):
        assert estimate_containment(-0.2, 100, 100) == 0.0

    def test_small_in_large(self):
        # |A|=10 fully inside |B|=1000: J = 10/1000 = 0.01.
        assert estimate_containment(0.01, 10, 1000) == pytest.approx(1.0, abs=0.05)

    def test_asymmetric_cardinalities_symmetric_result(self):
        # Containment is of the *smaller* side: argument order is moot.
        assert estimate_containment(0.05, 20, 500) == estimate_containment(
            0.05, 500, 20
        )

    def test_clipped_at_one(self):
        assert estimate_containment(0.9, 50, 50) <= 1.0
        # Overestimated Jaccard would push containment past 1 unclipped:
        # J=1 gives intersection (|A|+|B|)/2 = 55 > min = 10.
        assert estimate_containment(1.0, 10, 100) == 1.0

    def test_empty_sets(self):
        assert estimate_containment(0.5, 0, 10) == 0.0
        assert estimate_containment(0.5, 10, 0) == 0.0
        assert estimate_containment(0.5, 0, 0) == 0.0

    def test_monotone_in_jaccard(self):
        scores = [
            estimate_containment(j / 10.0, 80, 120) for j in range(11)
        ]
        assert scores == sorted(scores)
        assert all(0.0 <= s <= 1.0 for s in scores)


class TestMinhashContainmentRecall:
    def test_estimate_tracks_exact_containment(self):
        """Statistical gate: over seeded random value-set pairs, the
        MinHash-estimated containment stays close to the exact one."""
        from repro.discovery.profiles import _minhash_signature

        rng = np.random.default_rng(0xC0FFEE)
        errors = []
        for _ in range(30):
            n_a = int(rng.integers(30, 400))
            n_b = int(rng.integers(30, 400))
            overlap = int(rng.integers(0, min(n_a, n_b) + 1))
            shared = {f"s{i}" for i in range(overlap)}
            set_a = shared | {f"a{i}" for i in range(n_a - overlap)}
            set_b = shared | {f"b{i}" for i in range(n_b - overlap)}
            sig_a = _minhash_signature(set_a)
            sig_b = _minhash_signature(set_b)
            est_jaccard = float(np.mean(sig_a == sig_b))
            estimated = estimate_containment(est_jaccard, len(set_a), len(set_b))
            exact = overlap / min(n_a, n_b)
            errors.append(abs(estimated - exact))
        # 64 permutations are noisy per pair but unbiased in aggregate:
        # the aggregate bound is the real gate, the per-pair one just
        # catches gross estimator breakage.
        assert max(errors) < 0.45
        assert float(np.mean(errors)) < 0.10


class TestLazoMatcher:
    def test_finds_shared_key(self, tables):
        matches = LazoMatcher().match(*tables)
        assert matches
        assert matches[0][:2] == ("user_id", "uid")
        assert matches[0][2] > 0.9

    def test_disjoint_columns_not_matched(self, tables):
        left, right = tables
        matches = LazoMatcher().match(left, right)
        matched_pairs = {(a, b) for a, b, __ in matches}
        assert ("score", "other") not in matched_pairs

    def test_candidates_subquadratic_bucketing(self, tables):
        left, right = tables
        matcher = LazoMatcher()
        pairs = matcher.candidates(
            matcher._profiles(left), matcher._profiles(right)
        )
        # Only colliding signatures become candidates — not all 4 pairs.
        assert len(pairs) < left.n_cols * right.n_cols

    def test_invalid_banding_raises(self):
        with pytest.raises(DiscoveryError):
            LazoMatcher(bands=1000, rows_per_band=1000)
        with pytest.raises(DiscoveryError):
            LazoMatcher(bands=0)

    def test_banding_boundary_layouts(self, tables):
        from repro.discovery.profiles import MINHASH_PERMUTATIONS

        # Exactly-full layouts are legal and usable end to end.
        for bands, rows in (
            (16, 4),
            (1, MINHASH_PERMUTATIONS),
            (MINHASH_PERMUTATIONS, 1),
            (2, 32),
        ):
            assert bands * rows == MINHASH_PERMUTATIONS
            assert LazoMatcher(bands=bands, rows_per_band=rows).match(*tables)
        # One permutation over the signature length fails eagerly, at
        # construction — not deep inside signature slicing.
        with pytest.raises(DiscoveryError):
            LazoMatcher(bands=13, rows_per_band=5)  # 65 > 64
        with pytest.raises(DiscoveryError):
            LazoMatcher(bands=MINHASH_PERMUTATIONS + 1, rows_per_band=1)

    def test_degenerate_banding_raises(self):
        for bands, rows in ((0, 4), (4, 0), (-1, 4), (4, -1)):
            with pytest.raises(DiscoveryError):
                LazoMatcher(bands=bands, rows_per_band=rows)

    def test_usable_as_drg_matcher(self, tables):
        drg = DatasetRelationGraph.from_discovery(
            list(tables), LazoMatcher(), threshold=0.55
        )
        assert drg.n_relationships >= 1

    def test_deterministic(self, tables):
        assert LazoMatcher().match(*tables) == LazoMatcher().match(*tables)


class TestQuantileSketch:
    def test_similar_shapes_score_high(self):
        rng = np.random.default_rng(1)
        a = QuantileSketch(rng.normal(0, 1, 2000))
        b = QuantileSketch(rng.normal(100, 50, 2000))  # same shape, shifted
        assert quantile_similarity(a, b) > 0.9

    def test_different_shapes_score_lower(self):
        rng = np.random.default_rng(2)
        gaussian = QuantileSketch(rng.normal(0, 1, 2000))
        skewed = QuantileSketch(rng.exponential(1.0, 2000) ** 2)
        uniform_vs_gauss = quantile_similarity(gaussian, skewed)
        gauss_vs_gauss = quantile_similarity(
            gaussian, QuantileSketch(rng.normal(5, 2, 2000))
        )
        assert gauss_vs_gauss > uniform_vs_gauss

    def test_empty_column_scores_zero(self):
        empty = QuantileSketch(np.array([np.nan, np.nan]))
        other = QuantileSketch(np.arange(10, dtype=float))
        assert quantile_similarity(empty, other) == 0.0

    def test_of_column_rejects_strings(self):
        with pytest.raises(DiscoveryError):
            QuantileSketch.of_column(Column(["a", "b"]))


class TestDistributionMatcher:
    def test_renamed_scaled_copy_found(self):
        rng = np.random.default_rng(3)
        n = 500
        values = rng.normal(50, 10, n)
        a = Table({"height_cm": values}, name="a")
        b = Table({"height_mm": values * 10}, name="b")  # unit-scaled copy
        matches = DistributionMatcher().match(a, b)
        assert matches
        assert matches[0][:2] == ("height_cm", "height_mm")

    def test_string_columns_ignored(self):
        a = Table({"s": ["x", "y"]}, name="a")
        b = Table({"t": ["x", "y"]}, name="b")
        assert DistributionMatcher().match(a, b) == []

    def test_score_bounded(self, tables):
        matcher = DistributionMatcher(min_score=0.0)
        for __, __, score in matcher.match(*tables):
            assert 0.0 <= score <= 1.0

    def test_usable_as_drg_matcher(self, tables):
        drg = DatasetRelationGraph.from_discovery(
            list(tables), DistributionMatcher(), threshold=0.55
        )
        # Weak evidence: may or may not clear 0.55, but must not crash.
        assert drg.n_tables == 2
