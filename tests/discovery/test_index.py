"""Unit tests for the joinability index and the candidate-filtered matcher."""

import numpy as np
import pytest

from repro.dataframe import Table
from repro.discovery import (
    CandidateFilteredMatcher,
    ComaMatcher,
    JoinabilityIndex,
    ValueOverlapMatcher,
    validate_banding,
)
from repro.discovery.profiles import MINHASH_PERMUTATIONS, profile_table
from repro.errors import DiscoveryError
from repro.graph import DatasetRelationGraph
from repro.obs import MetricsRegistry


def make_table(name, columns):
    return Table(columns, name=name)


@pytest.fixture(scope="module")
def key_tables():
    """Two tables joinable through an identically named unique key."""
    n = 40
    ids = np.arange(n)
    left = make_table(
        "left", {"user_id": ids, "score": np.linspace(0.0, 1.0, n) + 0.001}
    )
    right = make_table(
        "right", {"user_id": ids[: n - 4], "other": np.arange(n - 4) + 0.5}
    )
    return left, right


class TestValidateBanding:
    def test_full_signature_layout_ok(self):
        validate_banding(16, 4)
        validate_banding(1, MINHASH_PERMUTATIONS)
        validate_banding(MINHASH_PERMUTATIONS, 1)

    def test_oversized_layout_raises(self):
        with pytest.raises(DiscoveryError):
            validate_banding(13, 5)  # 65 > 64
        with pytest.raises(DiscoveryError):
            validate_banding(1000, 1000)

    def test_degenerate_layouts_raise(self):
        for bands, rows in ((0, 4), (4, 0), (-1, 4), (4, -1), (0, 0)):
            with pytest.raises(DiscoveryError):
                validate_banding(bands, rows)

    def test_index_and_wrapper_validate_eagerly(self):
        with pytest.raises(DiscoveryError):
            JoinabilityIndex(bands=13, rows_per_band=5)
        with pytest.raises(DiscoveryError):
            CandidateFilteredMatcher(ComaMatcher(), bands=0)


class TestJoinabilityIndex:
    def test_register_and_query(self, key_tables):
        left, right = key_tables
        index = JoinabilityIndex()
        index.register(profile_table(left))
        index.register(profile_table(right))
        assert "left" in index and "right" in index
        assert index.n_columns == 4
        candidates = index.candidate_columns("left", "right")
        assert ("user_id", "user_id") in candidates

    def test_candidates_are_order_independent(self, key_tables):
        left, right = key_tables
        forward = JoinabilityIndex()
        forward.register(profile_table(left))
        forward.register(profile_table(right))
        backward = JoinabilityIndex()
        backward.register(profile_table(right))
        backward.register(profile_table(left))
        assert forward.candidate_columns(
            "left", "right"
        ) == backward.candidate_columns("left", "right")

    def test_unknown_table_raises(self, key_tables):
        left, _ = key_tables
        index = JoinabilityIndex()
        index.register(profile_table(left))
        with pytest.raises(DiscoveryError):
            index.candidate_columns("left", "ghost")
        with pytest.raises(DiscoveryError):
            index.evict("ghost")

    def test_reregister_replaces(self, key_tables):
        left, _ = key_tables
        index = JoinabilityIndex()
        index.register(profile_table(left))
        replacement = make_table("left", {"only": np.arange(7)})
        index.register(profile_table(replacement))
        assert index.n_columns == 1

    def test_evict_clears_buckets(self, key_tables):
        left, right = key_tables
        index = JoinabilityIndex()
        index.register(profile_table(left))
        index.register(profile_table(right))
        index.evict("left")
        assert "left" not in index
        assert index.n_columns == 2
        assert not index._keys.keys() & {
            ("left", "user_id"),
            ("left", "score"),
        }

    def test_name_channel_catches_case_and_separators(self):
        a = make_table("a", {"CreditID": np.arange(30)})
        b = make_table("b", {"credit_id": np.arange(1000, 1030)})
        index = JoinabilityIndex()
        index.register(profile_table(a))
        index.register(profile_table(b))
        assert index.candidate_columns("a", "b") == [("CreditID", "credit_id")]

    def test_token_channel_catches_reordered_tokens(self):
        a = make_table("a", {"id_credit": np.arange(30)})
        b = make_table("b", {"credit_id": np.arange(1000, 1030)})
        index = JoinabilityIndex()
        index.register(profile_table(a))
        index.register(profile_table(b))
        assert index.candidate_columns("a", "b") == [("id_credit", "credit_id")]

    def test_value_channel_catches_small_domain_containment(self):
        # Jaccard 0.25: MinHash bands collide with probability ~6% at
        # 16x4, but the inverted sketch-value channel is deterministic.
        a = make_table("a", {"flag": np.array([0, 1] * 10)})
        b = make_table("b", {"region": np.arange(8).repeat(3)})
        index = JoinabilityIndex()
        index.register(profile_table(a))
        index.register(profile_table(b))
        assert index.candidate_columns("a", "b") == [("flag", "region")]

    def test_band_channel_catches_renamed_value_copy(self):
        values = np.arange(500, 900)
        a = make_table("a", {"zzz": values})
        b = make_table("b", {"qqq": values[:380]})
        index = JoinabilityIndex()
        index.register(profile_table(a))
        index.register(profile_table(b))
        assert index.candidate_columns("a", "b") == [("zzz", "qqq")]

    def test_disjoint_unrelated_columns_not_candidates(self):
        a = make_table("a", {"alpha": np.arange(30)})
        b = make_table("b", {"omega": np.arange(5000, 5030)})
        index = JoinabilityIndex()
        index.register(profile_table(a))
        index.register(profile_table(b))
        assert index.candidate_columns("a", "b") == []

    def test_table_pairs_match_column_candidates(self, key_tables):
        left, right = key_tables
        lonely = make_table("lonely", {"qq_zz": np.arange(9000, 9040)})
        index = JoinabilityIndex()
        positions = {}
        for i, table in enumerate((left, right, lonely)):
            index.register(profile_table(table))
            positions[table.name] = i
        pairs = index.candidate_table_pairs(positions)
        # Consistency invariant: exactly the pairs whose column-candidate
        # set is non-empty, in canonical table order.
        from itertools import combinations

        expected = [
            (a, b)
            for a, b in combinations(positions, 2)
            if index.candidate_columns(a, b)
        ]
        assert pairs == expected
        assert ("left", "right") in pairs


class TestCandidateFilteredMatcher:
    def test_requires_profile_aware_matcher(self):
        with pytest.raises(DiscoveryError):
            CandidateFilteredMatcher(lambda a, b: [])

    def test_match_parity_with_exact(self, key_tables):
        left, right = key_tables
        exact = ComaMatcher().match(left, right)
        filtered = CandidateFilteredMatcher(ComaMatcher()).match(left, right)
        assert [
            (m.column_a, m.column_b, m.score, m.name_score, m.instance_score)
            for m in exact
        ] == [
            (m.column_a, m.column_b, m.score, m.name_score, m.instance_score)
            for m in filtered
        ]

    def test_call_yields_tuples(self, key_tables):
        left, right = key_tables
        out = list(CandidateFilteredMatcher(ComaMatcher())(left, right))
        assert out and all(len(t) == 3 for t in out)
        assert out[0][:2] == ("user_id", "user_id")

    def test_value_overlap_inner_matcher(self, key_tables):
        left, right = key_tables
        exact = ValueOverlapMatcher().match(left, right)
        filtered = CandidateFilteredMatcher(ValueOverlapMatcher()).match(
            left, right
        )
        assert exact == filtered

    def test_pairwise_counters(self, key_tables):
        left, right = key_tables
        wrapped = CandidateFilteredMatcher(ComaMatcher())
        wrapped.match(left, right)
        stats = wrapped.stats
        assert stats.pairs_considered == 4  # 2 columns x 2 columns
        assert 0 < stats.pairs_scored <= stats.pairs_considered
        assert stats.candidates_pruned == (
            stats.pairs_considered - stats.pairs_scored
        )
        assert stats.tables_registered == 2
        assert stats.columns_registered == 4
        assert stats.table_pairs_probed == 1

    def test_begin_lake_analytic_accounting(self, key_tables):
        left, right = key_tables
        wrapped = CandidateFilteredMatcher(ComaMatcher())
        wrapped.begin_lake([left, right])
        assert wrapped.stats.pairs_considered == 4
        pairs = wrapped.candidate_table_pairs()
        assert pairs == [("left", "right")]
        wrapped.match(left, right)
        # Lake-mode pairs were charged analytically — no double count.
        assert wrapped.stats.pairs_considered == 4

    def test_begin_lake_evicts_stale_tables(self, key_tables):
        left, right = key_tables
        wrapped = CandidateFilteredMatcher(ComaMatcher())
        wrapped.begin_lake([left, right])
        wrapped.begin_lake([left])
        assert wrapped.index.table_names == ["left"]
        with pytest.raises(DiscoveryError):
            wrapped.index.candidate_columns("left", "right")

    def test_candidate_table_pairs_requires_begin_lake(self):
        with pytest.raises(DiscoveryError):
            CandidateFilteredMatcher(ComaMatcher()).candidate_table_pairs()

    def test_drop_table_tolerates_unknown(self, key_tables):
        left, _ = key_tables
        wrapped = CandidateFilteredMatcher(ComaMatcher())
        wrapped.match(left, left)
        wrapped.drop_table("never-registered")
        wrapped.drop_table("left")
        assert "left" not in wrapped.index

    def test_stats_publish_round_trip(self, key_tables):
        left, right = key_tables
        wrapped = CandidateFilteredMatcher(ComaMatcher())
        wrapped.match(left, right)
        registry = MetricsRegistry()
        wrapped.stats.publish(registry)
        payload = wrapped.stats.as_dict()
        assert (
            registry.counter("sketch_index.pairs_considered").value
            == payload["pairs_considered"]
        )
        assert (
            registry.counter("sketch_index.candidates_pruned").value
            == payload["candidates_pruned"]
        )
        assert 0.0 <= payload["prune_ratio"] <= 1.0

    def test_drg_construction_parity(self, key_tables):
        tables = list(key_tables)
        reference = DatasetRelationGraph.from_discovery(
            tables, ComaMatcher(), threshold=0.55
        )
        filtered = DatasetRelationGraph.from_discovery(
            tables, CandidateFilteredMatcher(ComaMatcher()), threshold=0.55
        )
        assert reference.table_names == filtered.table_names
        assert reference.edge_fingerprint() == filtered.edge_fingerprint()


class TestVerifyExact:
    def test_perfect_recall_on_key_lake(self, key_tables):
        wrapped = CandidateFilteredMatcher(ComaMatcher())
        report = wrapped.verify_exact(list(key_tables), threshold=0.55)
        assert report.recall == 1.0
        assert report.edges_expected >= 1
        assert report.missed == ()

    def test_vacuous_recall_without_edges(self):
        a = make_table("a", {"alpha": np.arange(30)})
        b = make_table("b", {"omega": np.arange(5000, 5030)})
        wrapped = CandidateFilteredMatcher(ComaMatcher())
        report = wrapped.verify_exact([a, b], threshold=0.55)
        assert report.edges_expected == 0
        assert report.recall == 1.0

    def test_constructed_miss_is_reported(self):
        # The documented blind spot: many shared name tokens but no
        # identical token *set*, over disjoint value sets.  COMA's name
        # evidence alone clears the paper's 0.55, yet no channel
        # collides — verify_exact must surface exactly that.
        col_a = "_".join(list("abcdefghijklmnopqrstuv") + ["id"])
        col_b = "_".join(list("abcdefghijklmnopqrstuv") + ["key"])
        a = make_table("a", {col_a: np.arange(20)})
        b = make_table("b", {col_b: np.arange(7000, 7020)})
        exact = ComaMatcher().match(a, b)
        assert exact and exact[0].score >= 0.55  # the premise of the test
        wrapped = CandidateFilteredMatcher(ComaMatcher())
        report = wrapped.verify_exact([a, b], threshold=0.55)
        assert report.recall < 1.0
        assert report.missed == (("a", col_a, "b", col_b, exact[0].score),)

    def test_accepts_profiles_directly(self, key_tables):
        left, right = key_tables
        wrapped = CandidateFilteredMatcher(ComaMatcher())
        report = wrapped.verify_exact(
            [profile_table(left), profile_table(right)], threshold=0.55
        )
        assert report.recall == 1.0
        assert report.table_pairs == 1
