"""Unit tests for column profiling."""

import numpy as np

from repro.dataframe import Column, Table
from repro.discovery import profile_column, profile_table
from repro.discovery.profiles import MINHASH_PERMUTATIONS, SKETCH_SIZE


class TestProfileColumn:
    def test_basic_stats(self):
        profile = profile_column(Column([1, 2, 2, None]), "t", "c")
        assert profile.n_rows == 4
        assert profile.n_distinct == 2
        assert profile.null_ratio == 0.25

    def test_sketch_normalises_values(self):
        profile = profile_column(Column([1, 2]), "t", "c")
        assert profile.sketch == {"1", "2"}

    def test_float_ints_normalise_like_ints(self):
        a = profile_column(Column([1.0, 2.0]), "t", "a")
        b = profile_column(Column([1, 2]), "t", "b")
        assert a.sketch == b.sketch

    def test_strings_lowercased(self):
        profile = profile_column(Column(["Foo", " BAR "]), "t", "c")
        assert profile.sketch == {"foo", "bar"}

    def test_sketch_bounded(self):
        profile = profile_column(Column(list(range(10000))), "t", "c")
        assert len(profile.sketch) <= SKETCH_SIZE

    def test_numeric_range(self):
        profile = profile_column(Column([5.0, -2.0, 3.0]), "t", "c")
        assert profile.numeric_min == -2.0
        assert profile.numeric_max == 5.0

    def test_string_column_no_range(self):
        profile = profile_column(Column(["a"]), "t", "c")
        assert profile.numeric_min is None

    def test_minhash_shape(self):
        profile = profile_column(Column([1, 2, 3]), "t", "c")
        assert profile.minhash.shape == (MINHASH_PERMUTATIONS,)

    def test_minhash_deterministic_across_calls(self):
        a = profile_column(Column([1, 2, 3]), "t", "a")
        b = profile_column(Column([3, 2, 1]), "t", "b")
        assert np.array_equal(a.minhash, b.minhash)

    def test_uniqueness_key_like(self):
        profile = profile_column(Column(list(range(100))), "t", "c")
        assert profile.uniqueness == 1.0

    def test_uniqueness_all_null(self):
        profile = profile_column(Column([None, None]), "t", "c")
        assert profile.uniqueness == 0.0


class TestProfileTable:
    def test_profiles_all_columns(self):
        t = Table({"a": [1], "b": ["x"]}, name="demo")
        profiles = profile_table(t)
        assert profiles.table_name == "demo"
        assert [c.column_name for c in profiles.columns] == ["a", "b"]

    def test_column_lookup(self):
        t = Table({"a": [1]}, name="demo")
        assert profile_table(t).column("a").column_name == "a"
