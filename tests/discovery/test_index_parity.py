"""Property tests: candidate filtering never changes the DRG at recall 1.0.

The tentpole contract of the sketch index: wrapping an exact matcher in
the :class:`~repro.discovery.CandidateFilteredMatcher` must yield a
**byte-identical** DRG — same edges, same weights, same adjacency
insertion order — whenever ``verify_exact`` reports candidate recall
1.0.  Hypothesis drives random split lakes (both naming schemes), random
wide lakes, and random mutation sequences through the sketch-enabled
:class:`~repro.service.DiscoveryService`, for both exact matchers.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

import pytest

from repro import AutoFeat, AutoFeatConfig, DiscoveryService
from repro.datasets import (
    make_classification,
    make_wide_lake,
    rename_for_lake,
    split_into_lake,
)
from repro.datasets.splitter import SplitPlan
from repro.discovery import (
    CandidateFilteredMatcher,
    ComaMatcher,
    ValueOverlapMatcher,
)
from repro.graph import DatasetRelationGraph

from tests.service.test_incremental_equivalence import (
    SATELLITE_POOL,
    apply_ops,
    discovery_fingerprint,
    make_base,
    make_satellite,
    ops_strategy,
)

MATCHERS = [ComaMatcher, ValueOverlapMatcher]

SKETCH_CONFIG = AutoFeatConfig(
    top_k=1,
    max_path_length=2,
    sample_size=16,
    seed=5,
    enable_sketch_index=True,
)


def ordered_edges(drg: DatasetRelationGraph):
    """Every edge with its weight, in adjacency insertion order."""
    return [
        (e.node_a, e.column_a, e.node_b, e.column_b, e.weight)
        for e in drg.graph.all_edges()
    ]


def assert_byte_identical(reference, filtered):
    assert reference.table_names == filtered.table_names
    assert ordered_edges(reference) == ordered_edges(filtered)


def split_lake(seed: int, rename: bool):
    flat = make_classification(
        n_rows=120,
        n_informative=4,
        n_redundant=2,
        n_noise=2,
        n_categorical=1,
        seed=seed,
    )
    plan = SplitPlan(
        name=f"parity-{seed}",
        n_satellites=3 + seed % 3,
        n_base_features=2,
        seed=seed,
    )
    bundle = split_into_lake(flat, plan)
    return rename_for_lake(bundle) if rename else list(bundle.tables)


@pytest.mark.parametrize("matcher_cls", MATCHERS)
class TestDrgParity:
    @settings(
        max_examples=8,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(seed=st.integers(min_value=0, max_value=40), rename=st.booleans())
    def test_split_lake_byte_parity(self, matcher_cls, seed, rename):
        tables = split_lake(seed, rename)
        reference = DatasetRelationGraph.from_discovery(
            tables, matcher_cls(), threshold=0.55
        )
        wrapped = CandidateFilteredMatcher(matcher_cls())
        filtered = DatasetRelationGraph.from_discovery(
            tables, wrapped, threshold=0.55
        )
        recall = wrapped.verify_exact(tables, threshold=0.55)
        assert recall.recall == 1.0, recall.missed
        assert_byte_identical(reference, filtered)

    @settings(
        max_examples=6,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        seed=st.integers(min_value=0, max_value=40),
        n_tables=st.integers(min_value=4, max_value=24),
    )
    def test_wide_lake_byte_parity(self, matcher_cls, seed, n_tables):
        lake = make_wide_lake(n_tables, seed=seed)
        reference = DatasetRelationGraph.from_discovery(
            lake.tables, matcher_cls(), threshold=0.55
        )
        wrapped = CandidateFilteredMatcher(matcher_cls())
        filtered = DatasetRelationGraph.from_discovery(
            lake.tables, wrapped, threshold=0.55
        )
        recall = wrapped.verify_exact(lake.tables, threshold=0.55)
        assert recall.recall == 1.0, recall.missed
        assert_byte_identical(reference, filtered)


class TestServiceMutationParity:
    @settings(
        max_examples=8,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(ops=ops_strategy)
    def test_sketch_service_equals_unfiltered_cold_rebuild(self, ops):
        """register/update/drop through the sketch index vs a fresh
        *unwrapped* quadratic scan of the final lake."""
        lake = [make_base(), make_satellite("s1", 0), make_satellite("s2", 1)]
        service = DiscoveryService(
            lake, config=SKETCH_CONFIG, n_workers=1
        )
        try:
            assert isinstance(service.index.matcher, CandidateFilteredMatcher)
            apply_ops(service, ops)

            cold_drg = DatasetRelationGraph.from_discovery(
                service.index.tables, ComaMatcher(), threshold=0.55
            )
            assert_byte_identical(cold_drg, service.drg)

            # The standing index tracks the lake exactly.
            index = service.index.matcher.index
            assert sorted(index.table_names) == sorted(
                service.index.table_names
            )
        finally:
            service.close()

    def test_discover_request_parity_end_to_end(self):
        """One discover request through the sketch-enabled service vs a
        cold AutoFeat run over the unfiltered DRG."""
        lake = [make_base(), make_satellite("s1", 2), make_satellite("s3", 4)]
        service = DiscoveryService(lake, config=SKETCH_CONFIG, n_workers=1)
        try:
            service.register_table(make_satellite("s2", 1))
            warm = service.discover("base", "label", use_cache=False)
            cold_drg = DatasetRelationGraph.from_discovery(
                service.index.tables, ComaMatcher(), threshold=0.55
            )
            cold = AutoFeat(cold_drg, SKETCH_CONFIG).discover("base", "label")
            assert discovery_fingerprint(warm.result) == discovery_fingerprint(
                cold
            )
        finally:
            service.close()

    def test_candidate_min_recall_gate_accepts_clean_lake(self):
        config = SKETCH_CONFIG.with_overrides(candidate_min_recall=1.0)
        service = DiscoveryService(
            [make_base(), make_satellite("s1", 0)], config=config, n_workers=1
        )
        try:
            assert service.recall_report is not None
            assert service.recall_report.recall == 1.0
        finally:
            service.close()
