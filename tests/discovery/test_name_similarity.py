"""Unit tests for name-based similarity measures."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.discovery import (
    jaro_winkler_similarity,
    levenshtein_similarity,
    ngram_similarity,
    token_similarity,
    tokenize_identifier,
)

identifiers = st.text(alphabet="abcdefgh_XYZ0123", min_size=0, max_size=12)

ALL_MEASURES = [
    levenshtein_similarity,
    jaro_winkler_similarity,
    ngram_similarity,
    token_similarity,
]


class TestLevenshtein:
    def test_identical(self):
        assert levenshtein_similarity("credit", "credit") == 1.0

    def test_known_distance(self):
        # kitten -> sitting: distance 3, max length 7.
        assert levenshtein_similarity("kitten", "sitting") == pytest.approx(1 - 3 / 7)

    def test_empty_vs_nonempty(self):
        assert levenshtein_similarity("", "abc") == 0.0

    def test_disjoint_strings_low(self):
        assert levenshtein_similarity("aaaa", "zzzz") == 0.0


class TestJaroWinkler:
    def test_identical(self):
        assert jaro_winkler_similarity("abc", "abc") == 1.0

    def test_prefix_bonus(self):
        with_prefix = jaro_winkler_similarity("credit_id", "credit_no")
        swapped = jaro_winkler_similarity("id_credit", "no_credit")
        assert with_prefix > swapped

    def test_known_value(self):
        # Classic example: MARTHA vs MARHTA = 0.961.
        assert jaro_winkler_similarity("martha", "marhta") == pytest.approx(
            0.961, abs=0.001
        )

    def test_no_match(self):
        assert jaro_winkler_similarity("ab", "xy") == 0.0


class TestNgram:
    def test_identical(self):
        assert ngram_similarity("abc", "abc") == 1.0

    def test_case_insensitive(self):
        assert ngram_similarity("ABC", "abc") == 1.0

    def test_shared_substring_scores(self):
        assert ngram_similarity("credit_score", "credit_id") > 0.2

    def test_empty(self):
        assert ngram_similarity("", "abc") == 0.0


class TestTokenize:
    def test_snake_case(self):
        assert tokenize_identifier("credit_id") == ["credit", "id"]

    def test_camel_case(self):
        assert tokenize_identifier("applicantID") == ["applicant", "id"]

    def test_mixed(self):
        assert tokenize_identifier("loanHistory_key-2") == [
            "loan",
            "history",
            "key",
            "2",
        ]

    def test_empty(self):
        assert tokenize_identifier("") == []


class TestTokenSimilarity:
    def test_reordered_tokens_match(self):
        assert token_similarity("id_credit", "credit_id") == 1.0

    def test_convention_insensitive(self):
        assert token_similarity("credit_id", "CreditId") == 1.0

    def test_partial_overlap(self):
        assert token_similarity("credit_key", "credit_ref") == pytest.approx(1 / 3)

    def test_disjoint(self):
        assert token_similarity("alpha", "beta") == 0.0


class TestProperties:
    @pytest.mark.parametrize("measure", ALL_MEASURES)
    @given(a=identifiers, b=identifiers)
    def test_bounded_and_symmetric_enough(self, measure, a, b):
        score = measure(a, b)
        assert 0.0 <= score <= 1.0

    @pytest.mark.parametrize(
        "measure", [levenshtein_similarity, ngram_similarity, token_similarity]
    )
    @given(a=identifiers, b=identifiers)
    def test_symmetry(self, measure, a, b):
        assert measure(a, b) == pytest.approx(measure(b, a))

    @pytest.mark.parametrize("measure", ALL_MEASURES)
    @given(a=identifiers)
    def test_identity(self, measure, a):
        assert measure(a, a) == 1.0
