"""Unit tests for the COMA-style composite matcher."""

import gc

import numpy as np
import pytest

import repro.discovery.coma as coma_module
from repro.dataframe import Table
from repro.discovery import ComaMatcher
from repro.errors import DiscoveryError


@pytest.fixture
def tables():
    rng = np.random.default_rng(0)
    n = 200
    ids = np.arange(n)
    left = Table(
        {
            "applicant_id": ids,
            "income": rng.normal(50, 10, n),
            "region": rng.integers(0, 8, n),
        },
        name="applicants",
    )
    right = Table(
        {
            "applicant_id": ids,
            "credit_score": rng.normal(600, 40, n),
            # Partially overlapping category domain: a *spurious* but not
            # perfect match, the regime the lake generators produce.
            "region": rng.integers(4, 12, n),
        },
        name="credit",
    )
    return left, right


class TestMatching:
    def test_true_key_pair_scores_high(self, tables):
        matches = ComaMatcher().match(*tables)
        best = matches[0]
        assert (best.column_a, best.column_b) == ("applicant_id", "applicant_id")
        assert best.score > 0.8

    def test_spurious_category_pair_found_but_lower(self, tables):
        matches = {(m.column_a, m.column_b): m.score for m in ComaMatcher().match(*tables)}
        assert ("region", "region") in matches
        assert matches[("region", "region")] < matches[("applicant_id", "applicant_id")]

    def test_continuous_features_not_matched(self, tables):
        matches = ComaMatcher().match(*tables)
        columns = {m.column_a for m in matches} | {m.column_b for m in matches}
        assert "income" not in columns
        assert "credit_score" not in columns

    def test_key_like_gating_can_be_disabled(self, tables):
        matches = ComaMatcher(key_like_only=False, min_score=0.01).match(*tables)
        columns = {m.column_a for m in matches}
        assert "income" in columns

    def test_sorted_by_score(self, tables):
        scores = [m.score for m in ComaMatcher().match(*tables)]
        assert scores == sorted(scores, reverse=True)

    def test_min_score_floor(self, tables):
        matches = ComaMatcher(min_score=0.99).match(*tables)
        assert all(m.score >= 0.99 for m in matches)

    def test_renamed_key_still_found_via_tokens_and_values(self):
        n = 150
        ids = list(range(n))
        a = Table({"credit_ref": ids, "x": np.random.default_rng(0).normal(size=n)}, name="a")
        b = Table({"credit_key": ids, "y": np.random.default_rng(1).normal(size=n)}, name="b")
        matches = ComaMatcher().match(a, b)
        assert matches
        assert matches[0].column_a == "credit_ref"
        assert matches[0].column_b == "credit_key"
        assert matches[0].score >= 0.55

    def test_matcher_protocol_yields_tuples(self, tables):
        matcher = ComaMatcher()
        tuples = list(matcher(*tables))
        assert all(len(t) == 3 for t in tuples)

    def test_profile_cache_reused(self, tables):
        matcher = ComaMatcher()
        matcher.match(*tables)
        cached = len(matcher._profile_cache)
        matcher.match(*tables)
        assert len(matcher._profile_cache) == cached

    def test_invalid_weights_raise(self):
        with pytest.raises(DiscoveryError):
            ComaMatcher(name_weight=0.0, instance_weight=0.0)


class TestProfileCache:
    def test_same_object_profiled_once(self, tables, monkeypatch):
        calls = []
        real = coma_module.profile_table

        def counting(table):
            calls.append(table.name)
            return real(table)

        monkeypatch.setattr(coma_module, "profile_table", counting)
        matcher = ComaMatcher()
        matcher.match(*tables)
        matcher.match(*tables)
        assert sorted(calls) == ["applicants", "credit"]

    def test_entry_evicted_when_table_dies(self):
        matcher = ComaMatcher()
        table = Table({"key": list(range(50))}, name="ephemeral")
        matcher._profiles(table)
        assert len(matcher._profile_cache) == 1
        del table
        gc.collect()
        assert matcher._profile_cache == {}

    def test_id_reuse_does_not_serve_stale_profile(self):
        # Simulate CPython reusing a dead table's id() for a new table:
        # plant table a's cache entry under table b's key.  The weakref
        # guard must notice the mismatch and re-profile instead of serving
        # a's profile for b.
        matcher = ComaMatcher()
        a = Table({"alpha": list(range(40))}, name="a")
        b = Table({"beta": list(range(40, 80))}, name="b")
        matcher._profiles(a)
        matcher._profile_cache[id(b)] = matcher._profile_cache.pop(id(a))
        profile = matcher._profiles(b)
        assert profile.table_name == "b"
        assert [c.column_name for c in profile.columns] == ["beta"]

    def test_dead_ref_eviction_skips_reoccupied_slot(self):
        # If an entry was already replaced (same id, new live table), the
        # dying table's callback must not evict the newcomer's entry.
        matcher = ComaMatcher()
        a = Table({"alpha": list(range(30))}, name="a")
        matcher._profiles(a)
        key = id(a)
        stale_ref = matcher._profile_cache[key][0]
        b = Table({"beta": list(range(30))}, name="b")
        profile_b = coma_module.profile_table(b)
        matcher._profile_cache[key] = (coma_module.weakref.ref(b), profile_b)
        matcher._evict_profile(key, stale_ref)
        assert matcher._profile_cache[key][1] is profile_b


class TestScoreComposition:
    def test_name_and_instance_recorded(self, tables):
        match = ComaMatcher().match(*tables)[0]
        assert 0.0 <= match.name_score <= 1.0
        assert 0.0 <= match.instance_score <= 1.0

    def test_score_is_convex_combination(self, tables):
        matcher = ComaMatcher(name_weight=0.6, instance_weight=0.4)
        for match in matcher.match(*tables):
            expected = 0.6 * match.name_score + 0.4 * match.instance_score
            assert match.score == pytest.approx(expected, abs=1e-4)
