"""Unit tests for the COMA-style composite matcher."""

import numpy as np
import pytest

from repro.dataframe import Table
from repro.discovery import ComaMatcher
from repro.errors import DiscoveryError


@pytest.fixture
def tables():
    rng = np.random.default_rng(0)
    n = 200
    ids = np.arange(n)
    left = Table(
        {
            "applicant_id": ids,
            "income": rng.normal(50, 10, n),
            "region": rng.integers(0, 8, n),
        },
        name="applicants",
    )
    right = Table(
        {
            "applicant_id": ids,
            "credit_score": rng.normal(600, 40, n),
            # Partially overlapping category domain: a *spurious* but not
            # perfect match, the regime the lake generators produce.
            "region": rng.integers(4, 12, n),
        },
        name="credit",
    )
    return left, right


class TestMatching:
    def test_true_key_pair_scores_high(self, tables):
        matches = ComaMatcher().match(*tables)
        best = matches[0]
        assert (best.column_a, best.column_b) == ("applicant_id", "applicant_id")
        assert best.score > 0.8

    def test_spurious_category_pair_found_but_lower(self, tables):
        matches = {(m.column_a, m.column_b): m.score for m in ComaMatcher().match(*tables)}
        assert ("region", "region") in matches
        assert matches[("region", "region")] < matches[("applicant_id", "applicant_id")]

    def test_continuous_features_not_matched(self, tables):
        matches = ComaMatcher().match(*tables)
        columns = {m.column_a for m in matches} | {m.column_b for m in matches}
        assert "income" not in columns
        assert "credit_score" not in columns

    def test_key_like_gating_can_be_disabled(self, tables):
        matches = ComaMatcher(key_like_only=False, min_score=0.01).match(*tables)
        columns = {m.column_a for m in matches}
        assert "income" in columns

    def test_sorted_by_score(self, tables):
        scores = [m.score for m in ComaMatcher().match(*tables)]
        assert scores == sorted(scores, reverse=True)

    def test_min_score_floor(self, tables):
        matches = ComaMatcher(min_score=0.99).match(*tables)
        assert all(m.score >= 0.99 for m in matches)

    def test_renamed_key_still_found_via_tokens_and_values(self):
        n = 150
        ids = list(range(n))
        a = Table({"credit_ref": ids, "x": np.random.default_rng(0).normal(size=n)}, name="a")
        b = Table({"credit_key": ids, "y": np.random.default_rng(1).normal(size=n)}, name="b")
        matches = ComaMatcher().match(a, b)
        assert matches
        assert matches[0].column_a == "credit_ref"
        assert matches[0].column_b == "credit_key"
        assert matches[0].score >= 0.55

    def test_matcher_protocol_yields_tuples(self, tables):
        matcher = ComaMatcher()
        tuples = list(matcher(*tables))
        assert all(len(t) == 3 for t in tuples)

    def test_profile_cache_reused(self, tables):
        matcher = ComaMatcher()
        matcher.match(*tables)
        cached = len(matcher._profile_cache)
        matcher.match(*tables)
        assert len(matcher._profile_cache) == cached

    def test_invalid_weights_raise(self):
        with pytest.raises(DiscoveryError):
            ComaMatcher(name_weight=0.0, instance_weight=0.0)


class TestScoreComposition:
    def test_name_and_instance_recorded(self, tables):
        match = ComaMatcher().match(*tables)[0]
        assert 0.0 <= match.name_score <= 1.0
        assert 0.0 <= match.instance_score <= 1.0

    def test_score_is_convex_combination(self, tables):
        matcher = ComaMatcher(name_weight=0.6, instance_weight=0.4)
        for match in matcher.match(*tables):
            expected = 0.6 * match.name_score + 0.4 * match.instance_score
            assert match.score == pytest.approx(expected, abs=1e-4)
