"""Unit tests for instance-based similarity."""

import numpy as np
import pytest

from repro.dataframe import Column
from repro.discovery import (
    instance_similarity,
    minhash_jaccard,
    numeric_range_overlap,
    profile_column,
    sketch_containment,
    sketch_jaccard,
)


def prof(values, name="c"):
    return profile_column(Column(values), "t", name)


class TestJaccardContainment:
    def test_identical_sets(self):
        a, b = prof([1, 2, 3]), prof([3, 2, 1])
        assert sketch_jaccard(a, b) == 1.0
        assert sketch_containment(a, b) == 1.0

    def test_disjoint_sets(self):
        a, b = prof([1, 2]), prof([3, 4])
        assert sketch_jaccard(a, b) == 0.0
        assert sketch_containment(a, b) == 0.0

    def test_subset_containment_full(self):
        small, big = prof([1, 2]), prof(list(range(100)))
        assert sketch_containment(small, big) == 1.0
        assert sketch_jaccard(small, big) < 0.05

    def test_half_overlap(self):
        a, b = prof([1, 2, 3, 4]), prof([3, 4, 5, 6])
        assert sketch_jaccard(a, b) == pytest.approx(2 / 6)
        assert sketch_containment(a, b) == pytest.approx(0.5)

    def test_empty_sets(self):
        a, b = prof([None]), prof([None])
        assert sketch_jaccard(a, b) == 0.0
        assert sketch_containment(a, b) == 0.0


class TestMinhash:
    def test_identical(self):
        assert minhash_jaccard(prof([1, 2, 3]), prof([1, 2, 3])) == 1.0

    def test_estimates_jaccard(self):
        rng = np.random.default_rng(0)
        shared = list(rng.integers(0, 10_000, 400))
        a = prof(shared + list(rng.integers(10_000, 20_000, 400)), "a")
        b = prof(shared + list(rng.integers(20_000, 30_000, 400)), "b")
        true_jaccard = len(set(shared)) / len(
            set(a.sketch) | set(b.sketch) | set(map(str, shared))
        )
        estimate = minhash_jaccard(a, b)
        assert estimate == pytest.approx(1 / 3, abs=0.2)

    def test_disjoint_near_zero(self):
        a, b = prof(list(range(500)), "a"), prof(list(range(1000, 1500)), "b")
        assert minhash_jaccard(a, b) < 0.1


class TestNumericRange:
    def test_identical_ranges(self):
        assert numeric_range_overlap(prof([0.0, 10.0]), prof([0.0, 10.0])) == 1.0

    def test_disjoint_ranges(self):
        assert numeric_range_overlap(prof([0.0, 1.0]), prof([5.0, 6.0])) == 0.0

    def test_half_overlap(self):
        assert numeric_range_overlap(
            prof([0.0, 10.0]), prof([5.0, 15.0])
        ) == pytest.approx(5 / 15)

    def test_string_profiles_zero(self):
        assert numeric_range_overlap(prof(["a"]), prof([1.0])) == 0.0

    def test_degenerate_point_ranges(self):
        assert numeric_range_overlap(prof([3.0, 3.0]), prof([3.0])) == 1.0


class TestInstanceSimilarity:
    def test_same_values_high(self):
        assert instance_similarity(prof([1, 2, 3]), prof([1, 2, 3])) == 1.0

    def test_dtype_mismatch_zero(self):
        assert instance_similarity(prof(["a", "b"]), prof([1, 2])) == 0.0

    def test_containment_dominates(self):
        small_in_big = instance_similarity(prof([1, 2]), prof(list(range(50))))
        half = instance_similarity(prof([1, 2, 3, 4]), prof([3, 4, 5, 6]))
        assert small_in_big > half

    def test_bounded(self):
        rng = np.random.default_rng(1)
        for __ in range(5):
            a = prof(list(rng.integers(0, 30, 20)), "a")
            b = prof(list(rng.integers(0, 30, 20)), "b")
            assert 0.0 <= instance_similarity(a, b) <= 1.0
