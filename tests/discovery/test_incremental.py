"""Unit tests for the incremental match index.

Covers the scoped-rematch accounting (only affected pairs hit the
matcher), equivalence of the incremental DRG against a cold
``from_discovery`` build, and the MutationReport surface the service
layer's surgical invalidation consumes.
"""

import pytest

from repro.dataframe import Table
from repro.discovery import (
    ComaMatcher,
    IncrementalMatchIndex,
    LazoMatcher,
)
from repro.errors import DiscoveryError
from repro.graph import DatasetRelationGraph

MATCHERS = [ComaMatcher, LazoMatcher]


def _table(name, ids, feature=7):
    return Table(
        {"record_id": list(ids), f"{name}_val": [feature] * len(ids)},
        name=name,
    )


@pytest.fixture
def tables():
    return [
        _table("alpha", [1, 2, 3, 4]),
        _table("beta", [1, 2, 3, 9]),
        _table("gamma", [2, 3, 4, 5]),
    ]


class CountingMatcher:
    """Tuple-protocol matcher without profiles; counts pair calls."""

    def __init__(self):
        self.calls = []

    def __call__(self, t1, t2):
        self.calls.append((t1.name, t2.name))
        yield "record_id", "record_id", 0.9


@pytest.mark.parametrize("matcher_cls", MATCHERS)
class TestEquivalence:
    def test_initial_build_matches_cold(self, tables, matcher_cls):
        index = IncrementalMatchIndex(tables, matcher=matcher_cls())
        assert index.drg.edge_fingerprint() == index.rebuild().edge_fingerprint()
        assert index.version == 0

    def test_register_matches_cold(self, tables, matcher_cls):
        index = IncrementalMatchIndex(tables, matcher=matcher_cls())
        index.register_table(_table("delta", [3, 4, 5]))
        assert index.drg.edge_fingerprint() == index.rebuild().edge_fingerprint()

    def test_update_matches_cold(self, tables, matcher_cls):
        index = IncrementalMatchIndex(tables, matcher=matcher_cls())
        index.update_table(_table("beta", [100, 200, 300]))
        assert index.drg.edge_fingerprint() == index.rebuild().edge_fingerprint()

    def test_drop_matches_cold(self, tables, matcher_cls):
        index = IncrementalMatchIndex(tables, matcher=matcher_cls())
        index.drop_table("beta")
        assert index.drg.edge_fingerprint() == index.rebuild().edge_fingerprint()
        assert "beta" not in index

    def test_mutation_sequence_matches_cold(self, tables, matcher_cls):
        index = IncrementalMatchIndex(tables, matcher=matcher_cls())
        index.register_table(_table("delta", [1, 5]))
        index.drop_table("alpha")
        index.update_table(_table("gamma", [1, 2]))
        index.register_table(_table("alpha", [2, 9]))
        assert index.drg.edge_fingerprint() == index.rebuild().edge_fingerprint()
        assert index.version == 4


class TestScopedWork:
    def test_register_matches_only_new_pairs(self, tables):
        matcher = CountingMatcher()
        index = IncrementalMatchIndex(tables, matcher=matcher)
        matcher.calls.clear()
        index.register_table(_table("delta", [1]))
        assert matcher.calls == [
            ("alpha", "delta"), ("beta", "delta"), ("gamma", "delta")
        ]

    def test_update_rematches_only_its_pairs(self, tables):
        matcher = CountingMatcher()
        index = IncrementalMatchIndex(tables, matcher=matcher)
        matcher.calls.clear()
        index.update_table(_table("beta", [42]))
        assert sorted(matcher.calls) == [("alpha", "beta"), ("beta", "gamma")]

    def test_drop_makes_no_matcher_calls(self, tables):
        matcher = CountingMatcher()
        index = IncrementalMatchIndex(tables, matcher=matcher)
        matcher.calls.clear()
        report = index.drop_table("beta")
        assert matcher.calls == []
        assert report.n_pairs_rematched == 0

    def test_counters_account_reuse(self, tables):
        index = IncrementalMatchIndex(tables, matcher=ComaMatcher())
        before = index.counters.pairs_matched
        report = index.register_table(_table("delta", [1]))
        # 3 new pairs matched; the 3 old pairs replayed, not re-scored.
        assert index.counters.pairs_matched == before + 3
        assert report.n_pairs_reused == 3
        assert index.counters.mutations == 1


class TestMutationReports:
    def test_register_report(self, tables):
        index = IncrementalMatchIndex(tables, matcher=ComaMatcher())
        report = index.register_table(_table("delta", [1, 2, 3]))
        assert report.kind == "register"
        assert report.table == "delta"
        assert report.version == 1
        assert not report.content_changed  # no existing rows changed
        assert "delta" in report.affected_tables

    def test_drop_report_affects_partners_with_edges(self, tables):
        index = IncrementalMatchIndex(tables, matcher=ComaMatcher())
        report = index.drop_table("beta")
        assert report.kind == "drop"
        assert report.content_changed
        # every partner beta had a thresholded edge to is affected
        partners = {t for pair in report.changed_pairs for t in pair} - {"beta"}
        assert report.affected_tables == partners | {"beta"}

    def test_noop_update_affects_only_itself(self, tables):
        index = IncrementalMatchIndex(tables, matcher=ComaMatcher())
        # identical contents -> identical matches -> no changed pairs
        report = index.update_table(_table("beta", [1, 2, 3, 9]))
        assert report.changed_pairs == ()
        assert report.affected_tables == frozenset({"beta"})
        assert report.content_changed  # rows *may* differ; indexes stale


class TestValidation:
    def test_register_duplicate_raises(self, tables):
        index = IncrementalMatchIndex(tables)
        with pytest.raises(DiscoveryError):
            index.register_table(_table("beta", [1]))

    def test_update_unknown_raises(self, tables):
        index = IncrementalMatchIndex(tables)
        with pytest.raises(DiscoveryError):
            index.update_table(_table("nope", [1]))

    def test_drop_unknown_raises(self, tables):
        index = IncrementalMatchIndex(tables)
        with pytest.raises(DiscoveryError):
            index.drop_table("nope")

    def test_bad_threshold_raises(self):
        with pytest.raises(DiscoveryError):
            IncrementalMatchIndex(threshold=0.0)

    def test_unnamed_table_raises(self):
        with pytest.raises(DiscoveryError):
            IncrementalMatchIndex([Table({"x": [1]})])


class TestRawTableFallback:
    def test_matcher_without_profiles_still_incremental(self, tables):
        matcher = CountingMatcher()
        index = IncrementalMatchIndex(tables, matcher=matcher)
        cold = DatasetRelationGraph.from_discovery(
            index.tables, CountingMatcher(), threshold=0.55
        )
        assert index.drg.edge_fingerprint() == cold.edge_fingerprint()
        index.update_table(_table("alpha", [5, 6]))
        assert (
            index.drg.edge_fingerprint()
            == DatasetRelationGraph.from_discovery(
                index.tables, CountingMatcher(), threshold=0.55
            ).edge_fingerprint()
        )
