"""Unit tests for the Valentine-style matcher harness."""

import numpy as np
import pytest

from repro.dataframe import Table
from repro.discovery import ComaMatcher, evaluate_matches, run_matcher
from repro.errors import DiscoveryError


@pytest.fixture
def lake():
    rng = np.random.default_rng(2)
    n = 150
    ids = np.arange(n)
    fks = np.arange(n) + 5000
    base = Table({"id": ids, "fk": fks, "x": rng.normal(size=n)}, name="base")
    child = Table({"id": ids, "y": rng.normal(size=n)}, name="child")
    grand = Table({"fk": fks, "z": rng.normal(size=n)}, name="grand")
    return [base, child, grand]


class TestRunMatcher:
    def test_finds_true_edges(self, lake):
        matches = run_matcher(lake, ComaMatcher(), threshold=0.55)
        pairs = {
            (m.table_a, m.column_a, m.table_b, m.column_b) for m in matches
        }
        assert ("base", "id", "child", "id") in pairs
        assert ("base", "fk", "grand", "fk") in pairs

    def test_threshold_respected(self, lake):
        matches = run_matcher(lake, threshold=0.99)
        assert all(m.score >= 0.99 for m in matches)

    def test_duplicate_table_names_raise(self, lake):
        with pytest.raises(DiscoveryError):
            run_matcher([lake[0], lake[0]])


class TestEvaluateMatches:
    def test_perfect_recall(self, lake):
        matches = run_matcher(lake, threshold=0.55)
        truth = [("base", "id", "child", "id"), ("base", "fk", "grand", "fk")]
        report = evaluate_matches(matches, truth)
        assert report.recall == 1.0
        assert report.true_positives == 2

    def test_direction_insensitive(self, lake):
        matches = run_matcher(lake, threshold=0.55)
        truth = [("child", "id", "base", "id")]  # reversed direction
        assert evaluate_matches(matches, truth).recall == 1.0

    def test_empty_matches(self):
        report = evaluate_matches([], [("a", "x", "b", "y")])
        assert report.precision == 0.0
        assert report.recall == 0.0
        assert report.f1 == 0.0

    def test_f1_formula(self, lake):
        matches = run_matcher(lake, threshold=0.55)
        truth = [("base", "id", "child", "id"), ("base", "fk", "grand", "fk")]
        report = evaluate_matches(matches, truth)
        expected = (
            2 * report.precision * report.recall / (report.precision + report.recall)
        )
        assert report.f1 == pytest.approx(expected)
