"""Unit tests for schema inference."""

import numpy as np

from repro.dataframe import Column, Table, infer_role, schema_of
from repro.dataframe.schema import CATEGORY_ROLE, FEATURE_ROLE, KEY_ROLE


class TestInferRole:
    def test_unique_ints_are_key(self):
        assert infer_role(Column(list(range(100)))) == KEY_ROLE

    def test_low_cardinality_is_category(self):
        assert infer_role(Column([1, 2, 3] * 40)) == CATEGORY_ROLE

    def test_continuous_is_feature(self):
        rng = np.random.default_rng(0)
        values = np.round(rng.normal(size=1000), 6)
        # Continuous but with occasional repeats (rounding) -> feature.
        values[::2] = values[1::2]
        assert infer_role(Column(values)) == FEATURE_ROLE

    def test_constant_column_not_key(self):
        assert infer_role(Column([5] * 50)) != KEY_ROLE


class TestSchemaOf:
    def test_profiles_every_column(self):
        t = Table({"id": list(range(60)), "cat": [1, 2] * 30}, name="t")
        schema = schema_of(t)
        assert schema.name == "t"
        assert [c.name for c in schema.columns] == ["id", "cat"]

    def test_key_candidates(self):
        t = Table(
            {
                "id": list(range(60)),
                "cat": [1, 2] * 30,
                "noise": np.random.default_rng(0).normal(size=60),
            },
            name="t",
        )
        schema = schema_of(t)
        candidates = {c.name for c in schema.key_candidates}
        assert "id" in candidates
        assert "cat" in candidates

    def test_null_ratio_recorded(self):
        t = Table({"a": [1, None, None, 4]}, name="t")
        assert schema_of(t).column("a").null_ratio == 0.5

    def test_column_lookup_raises_keyerror(self):
        schema = schema_of(Table({"a": [1]}, name="t"))
        try:
            schema.column("zzz")
            assert False, "expected KeyError"
        except KeyError:
            pass
