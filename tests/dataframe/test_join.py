"""Unit tests for left joins with cardinality control."""

import pytest

from repro.dataframe import Table, dedup_by_key, join_key_null_ratio, left_join
from repro.errors import JoinError


@pytest.fixture
def left():
    return Table({"id": [1, 2, 3, 4], "x": [10, 20, 30, 40]}, name="left")


@pytest.fixture
def right():
    return Table({"id": [1, 2, 9], "y": ["a", "b", "c"]}, name="right")


class TestLeftJoinBasics:
    def test_preserves_left_row_count(self, left, right):
        joined = left_join(left, right, "id", "id")
        assert joined.n_rows == left.n_rows

    def test_matches_values(self, left, right):
        joined = left_join(left, right, "id", "id")
        assert joined.column("y").to_list() == ["a", "b", None, None]

    def test_unmatched_rows_are_null(self, left, right):
        joined = left_join(left, right, "id", "id")
        assert joined.column("y").null_count() == 2

    def test_keeps_left_columns_first(self, left, right):
        joined = left_join(left, right, "id", "id")
        assert joined.column_names[:2] == ["id", "x"]

    def test_right_key_kept_by_default(self, left, right):
        joined = left_join(left, right, "id", "id")
        assert "id_r" in joined  # collision-suffixed copy of the right key

    def test_drop_right_key(self, left, right):
        joined = left_join(left, right, "id", "id", drop_right_key=True)
        assert "id_r" not in joined

    def test_missing_left_column_raises(self, left, right):
        with pytest.raises(JoinError):
            left_join(left, right, "nope", "id")

    def test_missing_right_column_raises(self, left, right):
        with pytest.raises(JoinError):
            left_join(left, right, "id", "nope")

    def test_join_result_keeps_left_name(self, left, right):
        assert left_join(left, right, "id", "id").name == "left"

    def test_null_keys_never_match(self):
        left = Table({"id": [1, None], "x": [1, 2]}, name="l")
        right = Table({"id": [1, None], "y": [10, 20]}, name="r")
        joined = left_join(left, right, "id", "id", drop_right_key=True)
        assert joined.column("y").to_list() == [10, None]

    def test_int_float_keys_compare_equal(self):
        left = Table({"id": [1.0, 2.0]}, name="l")
        right = Table({"id": [1, 2], "y": [10, 20]}, name="r")
        joined = left_join(left, right, "id", "id", drop_right_key=True)
        assert joined.column("y").to_list() == [10, 20]

    def test_string_keys(self):
        left = Table({"k": ["a", "b"]}, name="l")
        right = Table({"k": ["b"], "y": [1]}, name="r")
        joined = left_join(left, right, "k", "k", drop_right_key=True)
        assert joined.column("y").to_list() == [None, 1]

    def test_empty_right_table(self, left):
        right = Table({"id": [], "y": []}, name="r")
        joined = left_join(left, right, "id", "id", drop_right_key=True)
        assert joined.column("y").null_count() == 4


class TestCardinalityControl:
    def test_one_to_many_is_deduplicated(self, left):
        right = Table({"id": [1, 1, 1, 2], "y": [1, 2, 3, 4]}, name="r")
        joined = left_join(left, right, "id", "id", drop_right_key=True)
        assert joined.n_rows == left.n_rows
        assert joined.column("y")[0] in (1, 2, 3)

    def test_dedup_is_deterministic(self, left):
        right = Table({"id": [1, 1, 1, 2], "y": [1, 2, 3, 4]}, name="r")
        a = left_join(left, right, "id", "id", seed=7)
        b = left_join(left, right, "id", "id", seed=7)
        assert a == b

    def test_dedup_varies_with_seed(self, left):
        right = Table({"id": [1] * 50, "y": list(range(50))}, name="r")
        picks = {
            left_join(left, right, "id", "id", seed=s).column("y")[0]
            for s in range(20)
        }
        assert len(picks) > 1

    def test_deduplicate_false_raises_on_duplicates(self, left):
        right = Table({"id": [1, 1], "y": [1, 2]}, name="r")
        with pytest.raises(JoinError, match="duplicate join key"):
            left_join(left, right, "id", "id", deduplicate=False)

    def test_deduplicate_false_ok_on_unique(self, left, right):
        joined = left_join(left, right, "id", "id", deduplicate=False)
        assert joined.n_rows == left.n_rows


class TestDedupByKey:
    def test_one_row_per_key(self):
        t = Table({"k": [1, 1, 2, 2, 2], "v": [1, 2, 3, 4, 5]}, name="t")
        out = dedup_by_key(t, "k")
        assert out.n_rows == 2
        assert sorted(out.column("k").to_list()) == [1, 2]

    def test_null_keys_dropped(self):
        t = Table({"k": [1, None], "v": [1, 2]}, name="t")
        assert dedup_by_key(t, "k").n_rows == 1

    def test_deterministic_per_seed(self):
        t = Table({"k": [1] * 10, "v": list(range(10))}, name="t")
        assert dedup_by_key(t, "k", seed=3) == dedup_by_key(t, "k", seed=3)


class TestJoinNullRatio:
    def test_ratio_over_contributed(self, left, right):
        joined = left_join(left, right, "id", "id", drop_right_key=True)
        assert join_key_null_ratio(joined, ["y"]) == pytest.approx(0.5)

    def test_missing_columns_raise(self, left, right):
        joined = left_join(left, right, "id", "id")
        with pytest.raises(JoinError):
            join_key_null_ratio(joined, ["not_there"])
