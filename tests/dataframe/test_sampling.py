"""Unit tests for sampling and splitting."""

import numpy as np
import pytest

from repro.dataframe import Table, random_sample, stratified_sample, train_test_split_indices
from repro.errors import SchemaError


def make_table(n=100, pos_fraction=0.3, seed=0):
    rng = np.random.default_rng(seed)
    label = (rng.random(n) < pos_fraction).astype(int)
    return Table({"x": rng.normal(size=n), "label": label}, name="t")


class TestRandomSample:
    def test_size(self):
        assert random_sample(make_table(), 10).n_rows == 10

    def test_caps_at_table_size(self):
        assert random_sample(make_table(20), 100).n_rows == 20

    def test_deterministic(self):
        t = make_table()
        assert random_sample(t, 10, seed=1) == random_sample(t, 10, seed=1)

    def test_negative_raises(self):
        with pytest.raises(SchemaError):
            random_sample(make_table(), -1)

    def test_no_duplicate_rows(self):
        t = Table({"i": list(range(50))}, name="t")
        out = random_sample(t, 30, seed=2)
        values = out.column("i").to_list()
        assert len(values) == len(set(values))


class TestStratifiedSample:
    def test_preserves_class_ratio(self):
        t = make_table(1000, pos_fraction=0.2, seed=1)
        out = stratified_sample(t, "label", 200, seed=1)
        ratio = np.mean(out.column("label").to_list())
        assert ratio == pytest.approx(0.2, abs=0.05)

    def test_returns_full_table_when_n_large(self):
        t = make_table(50)
        assert stratified_sample(t, "label", 500) is t

    def test_rare_class_kept(self):
        label = [0] * 99 + [1]
        t = Table({"x": list(range(100)), "label": label}, name="t")
        out = stratified_sample(t, "label", 10, seed=0)
        assert 1 in out.column("label").to_list()

    def test_nonpositive_raises(self):
        with pytest.raises(SchemaError):
            stratified_sample(make_table(), "label", 0)

    def test_all_null_labels_raise(self):
        t = Table({"x": [1, 2], "label": [None, None]}, name="t")
        with pytest.raises(SchemaError):
            stratified_sample(t, "label", 1)

    def test_deterministic(self):
        t = make_table(500)
        a = stratified_sample(t, "label", 100, seed=5)
        b = stratified_sample(t, "label", 100, seed=5)
        assert a == b


class TestTrainTestSplit:
    def test_partition(self):
        y = np.array([0, 1] * 50)
        train, test = train_test_split_indices(100, y, 0.2, seed=0)
        assert len(train) + len(test) == 100
        assert set(train).isdisjoint(test)

    def test_fraction(self):
        y = np.array([0, 1] * 500)
        train, test = train_test_split_indices(1000, y, 0.2, seed=0)
        assert len(test) == pytest.approx(200, abs=5)

    def test_stratified(self):
        y = np.array([0] * 900 + [1] * 100)
        __, test = train_test_split_indices(1000, y, 0.2, seed=0)
        test_pos = np.sum(y[test] == 1)
        assert test_pos == pytest.approx(20, abs=3)

    def test_every_class_in_test_when_possible(self):
        y = np.array([0] * 96 + [1] * 4)
        __, test = train_test_split_indices(100, y, 0.2, seed=0)
        assert 1 in y[test]

    def test_singleton_class_stays_in_train(self):
        y = np.array([0] * 99 + [1])
        train, test = train_test_split_indices(100, y, 0.2, seed=0)
        assert 1 in y[train]
        assert 1 not in y[test]

    def test_invalid_fraction_raises(self):
        with pytest.raises(SchemaError):
            train_test_split_indices(10, np.zeros(10), 1.5)

    def test_deterministic(self):
        y = np.array([0, 1] * 50)
        a = train_test_split_indices(100, y, 0.2, seed=9)
        b = train_test_split_indices(100, y, 0.2, seed=9)
        assert np.array_equal(a[0], b[0]) and np.array_equal(a[1], b[1])
