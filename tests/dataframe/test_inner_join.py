"""Unit tests for inner joins and the class-skew effect (paper §IV-B)."""

import numpy as np
import pytest

from repro.dataframe import Table, inner_join, left_join
from repro.errors import JoinError


@pytest.fixture
def left():
    return Table({"id": [1, 2, 3, 4], "x": [10, 20, 30, 40]}, name="left")


@pytest.fixture
def right():
    return Table({"id": [1, 3, 9], "y": ["a", "b", "c"]}, name="right")


class TestInnerJoin:
    def test_drops_unmatched(self, left, right):
        joined = inner_join(left, right, "id", "id", drop_right_key=True)
        assert joined.column("id").to_list() == [1, 3]
        assert joined.column("y").to_list() == ["a", "b"]

    def test_no_nulls_in_contributed_columns(self, left, right):
        joined = inner_join(left, right, "id", "id", drop_right_key=True)
        assert joined.column("y").null_count() == 0

    def test_null_keys_excluded(self):
        left = Table({"id": [1, None]}, name="l")
        right = Table({"id": [1, None], "y": [9, 8]}, name="r")
        joined = inner_join(left, right, "id", "id", drop_right_key=True)
        assert joined.n_rows == 1

    def test_missing_column_raises(self, left, right):
        with pytest.raises(JoinError):
            inner_join(left, right, "nope", "id")

    def test_dedups_like_left_join(self, left):
        right = Table({"id": [1, 1, 2], "y": [1, 2, 3]}, name="r")
        joined = inner_join(left, right, "id", "id", drop_right_key=True)
        assert joined.n_rows == 2  # ids 1 and 2, once each

    def test_subset_of_left_join(self, left, right):
        outer = left_join(left, right, "id", "id", drop_right_key=True)
        inner = inner_join(left, right, "id", "id", drop_right_key=True)
        matched = outer.filter(~outer.column("y").mask)
        assert inner == matched


class TestClassSkew:
    def test_inner_join_skews_label_distribution(self):
        """The §IV-B argument: partial-match inner joins shift class ratios."""
        rng = np.random.default_rng(0)
        n = 1000
        label = (rng.random(n) < 0.3).astype(int)
        base = Table({"id": np.arange(n), "label": label}, name="base")
        # Satellite covering mostly positive-label rows.
        positive_rows = np.flatnonzero(label == 1)
        negative_rows = np.flatnonzero(label == 0)[:100]
        covered = np.concatenate([positive_rows, negative_rows])
        satellite = Table(
            {"id": covered, "y": rng.normal(0, 1, len(covered))}, name="sat"
        )
        outer = left_join(base, satellite, "id", "id", drop_right_key=True)
        inner = inner_join(base, satellite, "id", "id", drop_right_key=True)
        original_ratio = float(np.mean(label))
        outer_ratio = float(np.mean(outer.column("label").to_list()))
        inner_ratio = float(np.mean(inner.column("label").to_list()))
        assert outer_ratio == pytest.approx(original_ratio)  # preserved
        assert abs(inner_ratio - original_ratio) > 0.2  # badly skewed
