"""Property-based tests (hypothesis) for the table engine's invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dataframe import Column, Table, from_csv_text, left_join, to_csv_text
from repro.dataframe.sampling import stratified_sample, train_test_split_indices

# Strategies -------------------------------------------------------------------

cell_values = st.one_of(
    st.none(),
    st.integers(min_value=-1000, max_value=1000),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(alphabet="abcxyz_0123456789", min_size=0, max_size=8),
    st.booleans(),
)

int_lists = st.lists(
    st.one_of(st.none(), st.integers(min_value=-50, max_value=50)),
    min_size=1,
    max_size=60,
)


@st.composite
def homogeneous_column(draw):
    kind = draw(st.sampled_from(["int", "float", "str", "bool"]))
    n = draw(st.integers(min_value=1, max_value=50))
    if kind == "int":
        base = st.integers(min_value=-100, max_value=100)
    elif kind == "float":
        base = st.floats(allow_nan=False, allow_infinity=False, width=32)
    elif kind == "bool":
        base = st.booleans()
    else:
        base = st.text(alphabet="abc_123", max_size=6)
    return draw(st.lists(st.one_of(st.none(), base), min_size=n, max_size=n))


# Column invariants --------------------------------------------------------------


@given(homogeneous_column())
def test_column_roundtrips_values(values):
    col = Column(values)
    out = col.to_list()
    assert len(out) == len(values)
    # Nulls survive exactly where Nones were put.
    for raw, back in zip(values, out):
        if raw is None:
            assert back is None


@given(homogeneous_column())
def test_null_count_matches_mask(values):
    col = Column(values)
    assert col.null_count() == int(col.mask.sum())
    assert 0.0 <= col.null_ratio() <= 1.0


@given(homogeneous_column(), st.integers(min_value=0, max_value=10))
def test_take_length(values, k):
    col = Column(values)
    indices = [i % len(col) for i in range(k)]
    assert len(col.take(indices)) == k


@given(homogeneous_column())
def test_fill_nulls_removes_all_nulls(values):
    col = Column(values)
    fill = col.mode()
    if fill is None:
        return  # entirely-null column: nothing to learn a fill value from
    assert not col.fill_nulls(fill).has_nulls()


@given(homogeneous_column())
def test_unique_is_sorted_and_distinct(values):
    uniques = Column(values).unique()
    assert uniques == sorted(set(uniques), key=uniques.index) or uniques == sorted(
        uniques, key=str
    ) or len(set(map(str, uniques))) == len(uniques)
    assert len(set(map(str, uniques))) == len(uniques)


# Join invariants -----------------------------------------------------------------


@given(int_lists, int_lists, st.integers(min_value=0, max_value=99))
@settings(max_examples=60)
def test_left_join_preserves_probe_rows(left_keys, right_keys, seed):
    left = Table({"k": left_keys, "x": list(range(len(left_keys)))}, name="l")
    right = Table({"k": right_keys, "y": list(range(len(right_keys)))}, name="r")
    joined = left_join(left, right, "k", "k", seed=seed)
    assert joined.n_rows == left.n_rows
    # Left columns are unchanged by the join.
    assert joined.column("x").to_list() == left.column("x").to_list()


@given(int_lists, int_lists)
@settings(max_examples=60)
def test_left_join_matches_only_existing_keys(left_keys, right_keys):
    left = Table({"k": left_keys}, name="l")
    right = Table({"k": right_keys, "y": [1] * len(right_keys)}, name="r")
    joined = left_join(left, right, "k", "k", drop_right_key=True)
    present = {k for k in right_keys if k is not None}
    for i, key in enumerate(left_keys):
        matched = joined.column("y")[i] is not None
        assert matched == (key in present)


# Sampling invariants -----------------------------------------------------------------


@given(
    st.integers(min_value=20, max_value=300),
    st.floats(min_value=0.1, max_value=0.9),
    st.integers(min_value=0, max_value=99),
)
@settings(max_examples=40)
def test_split_partitions_rows(n, fraction, seed):
    rng = np.random.default_rng(seed)
    y = rng.integers(0, 2, n)
    train, test = train_test_split_indices(n, y, 0.25, seed=seed)
    merged = sorted(list(train) + list(test))
    assert merged == list(range(n))


@given(st.integers(min_value=50, max_value=400), st.integers(min_value=0, max_value=99))
@settings(max_examples=30)
def test_stratified_sample_is_subset(n, seed):
    rng = np.random.default_rng(seed)
    t = Table(
        {"i": list(range(n)), "label": rng.integers(0, 2, n)}, name="t"
    )
    out = stratified_sample(t, "label", max(2, n // 3), seed=seed)
    values = out.column("i").to_list()
    assert len(values) == len(set(values))
    assert set(values) <= set(range(n))


# CSV roundtrip -----------------------------------------------------------------------


@given(st.lists(st.integers(min_value=-99, max_value=99), min_size=1, max_size=30))
def test_csv_roundtrip_ints(values):
    t = Table({"a": values}, name="t")
    assert from_csv_text(to_csv_text(t)).column("a").to_list() == values


@given(
    st.lists(
        st.text(alphabet="abcdef ghi", min_size=1, max_size=10),
        min_size=1,
        max_size=20,
    )
)
def test_csv_roundtrip_strings(values):
    t = Table({"a": values}, name="t")
    assert from_csv_text(to_csv_text(t)).column("a").to_list() == values
