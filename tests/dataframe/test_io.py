"""Unit tests for CSV serialisation."""

import pytest

from repro.dataframe import DType, Table, from_csv_text, read_csv, to_csv_text, write_csv
from repro.errors import SchemaError


class TestParsing:
    def test_header_and_rows(self):
        t = from_csv_text("a,b\n1,x\n2,y\n")
        assert t.column_names == ["a", "b"]
        assert t.n_rows == 2

    def test_type_inference(self):
        t = from_csv_text("i,f,b,s\n1,1.5,true,hello\n")
        dtypes = t.dtypes()
        assert dtypes["i"] is DType.INT
        assert dtypes["f"] is DType.FLOAT
        assert dtypes["b"] is DType.BOOL
        assert dtypes["s"] is DType.STRING

    def test_empty_cell_is_null(self):
        t = from_csv_text("a,b\n1,\n,2\n")
        assert t.column("a").to_list() == [1, None]
        assert t.column("b").to_list() == [None, 2]

    def test_no_header_raises(self):
        with pytest.raises(SchemaError):
            from_csv_text("")

    def test_duplicate_header_raises(self):
        with pytest.raises(SchemaError):
            from_csv_text("a,a\n1,2\n")

    def test_numeric_looking_strings_parse(self):
        t = from_csv_text("a\n007\n")
        assert t.column("a")[0] == 7  # leading zeros parse as int


class TestSerialisation:
    def test_roundtrip(self):
        original = Table(
            {"i": [1, None, 3], "s": ["a", "b", None], "f": [1.5, 2.0, None]},
            name="t",
        )
        restored = from_csv_text(to_csv_text(original))
        assert restored.column("i").to_list() == [1, None, 3]
        assert restored.column("s").to_list() == ["a", "b", None]
        assert restored.column("f").to_list() == [1.5, 2, None]

    def test_bool_roundtrip(self):
        original = Table({"b": [True, False, None]}, name="t")
        restored = from_csv_text(to_csv_text(original))
        assert restored.column("b").to_list() == [True, False, None]

    def test_nulls_serialise_as_empty(self):
        # csv quotes a lone empty field ('""') to keep the row non-empty;
        # what matters is that it parses back to a null.
        text = to_csv_text(Table({"a": [None]}, name="t"))
        assert from_csv_text(text).column("a").to_list() == [None]


class TestFileIO:
    def test_write_and_read(self, tmp_path):
        path = tmp_path / "demo.csv"
        original = Table({"a": [1, 2], "b": ["x", "y"]}, name="demo")
        write_csv(original, path)
        restored = read_csv(path)
        assert restored == original
        assert restored.name == "demo"

    def test_read_name_override(self, tmp_path):
        path = tmp_path / "file.csv"
        write_csv(Table({"a": [1]}, name="x"), path)
        assert read_csv(path, name="custom").name == "custom"
