"""Unit and property tests for the predicate DSL."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.dataframe import Table, col, where
from repro.errors import SchemaError


@pytest.fixture
def table():
    return Table(
        {
            "age": [10, 20, None, 40, 25],
            "country": ["nl", "de", "nl", None, "fr"],
            "score": [1.0, 2.5, 3.0, 4.5, None],
        },
        name="people",
    )


class TestComparisons:
    def test_ge(self, table):
        assert table.where(col("age") >= 20).column("age").to_list() == [20, 40, 25]

    def test_lt(self, table):
        assert table.where(col("age") < 20).column("age").to_list() == [10]

    def test_eq(self, table):
        assert table.where(col("country") == "nl").n_rows == 2

    def test_ne(self, table):
        # Nulls never satisfy != either (SQL semantics).
        assert table.where(col("country") != "nl").column("country").to_list() == [
            "de",
            "fr",
        ]

    def test_nulls_never_match_comparisons(self, table):
        for expr in (col("age") > 0, col("age") < 100, col("age") == 40):
            out = table.where(expr)
            assert None not in out.column("age").to_list()

    def test_between(self, table):
        assert table.where(col("age").between(20, 30)).column("age").to_list() == [
            20,
            25,
        ]

    def test_isin(self, table):
        assert table.where(col("country").isin(["nl", "fr"])).n_rows == 3

    def test_is_null(self, table):
        assert table.where(col("age").is_null()).n_rows == 1

    def test_not_null(self, table):
        assert table.where(col("score").not_null()).n_rows == 4

    def test_type_mismatch_is_false(self, table):
        # Comparing strings against a number: no match, no crash.
        assert table.where(col("country") > 5).n_rows == 0


class TestCombinators:
    def test_and(self, table):
        out = table.where((col("age") >= 20) & (col("country") == "de"))
        assert out.n_rows == 1

    def test_or(self, table):
        out = table.where((col("age") == 10) | (col("age") == 40))
        assert out.n_rows == 2

    def test_not(self, table):
        out = table.where(~(col("country") == "nl"))
        assert out.n_rows == 3  # includes the null-country row

    def test_nested(self, table):
        expr = ((col("age") >= 20) | col("age").is_null()) & col("score").not_null()
        assert table.where(expr).n_rows == 3

    def test_repr_is_readable(self):
        expr = (col("a") > 1) & ~(col("b") == "x")
        assert "AND" in repr(expr)
        assert "NOT" in repr(expr)


class TestFunctionForms:
    def test_where_function(self, table):
        assert where(table, col("age") >= 20) == table.where(col("age") >= 20)

    def test_unknown_column_raises(self, table):
        with pytest.raises(SchemaError):
            table.where(col("zzz") > 1)


class TestProperties:
    @given(
        st.lists(
            st.one_of(st.none(), st.integers(min_value=-50, max_value=50)),
            min_size=1,
            max_size=50,
        ),
        st.integers(min_value=-50, max_value=50),
    )
    def test_partition_by_threshold(self, values, threshold):
        """where(x > t), where(x <= t) and where(is_null) partition the rows."""
        t = Table({"x": values}, name="t")
        above = t.where(col("x") > threshold).n_rows
        below = t.where(col("x") <= threshold).n_rows
        nulls = t.where(col("x").is_null()).n_rows
        assert above + below + nulls == t.n_rows

    @given(
        st.lists(
            st.one_of(st.none(), st.integers(min_value=-20, max_value=20)),
            min_size=1,
            max_size=40,
        )
    )
    def test_demorgan(self, values):
        t = Table({"x": values}, name="t")
        a = col("x") > 0
        b = col("x") < 10
        lhs = t.where(~(a & b))
        rhs = t.where(~a | ~b)
        assert lhs == rhs
