"""Fuzz the hash left join against a brute-force reference implementation."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dataframe import Table, dedup_by_key, left_join

keys = st.lists(
    st.one_of(st.none(), st.integers(min_value=0, max_value=12)),
    min_size=1,
    max_size=40,
)


def reference_left_join(
    left_keys: list, right_keys: list, right_values: list
) -> list:
    """Brute force: first build-side row per key (post-dedup semantics)."""
    lookup = {}
    for key, value in zip(right_keys, right_values):
        if key is not None and key not in lookup:
            lookup[key] = value
    return [lookup.get(k) if k is not None else None for k in left_keys]


@given(keys, keys, st.integers(min_value=0, max_value=99))
@settings(max_examples=100)
def test_join_matches_reference_modulo_representative(left_keys, right_keys, seed):
    """Our join equals the reference once the same representative is fixed.

    The engine picks a seeded-random representative per duplicate key;
    feeding the *deduplicated* right table to the reference removes that
    freedom, after which outputs must agree exactly.
    """
    left = Table({"k": left_keys}, name="l")
    right = Table(
        {"k": right_keys, "v": list(range(len(right_keys)))}, name="r"
    )
    deduped = dedup_by_key(right, "k", seed=seed)
    expected = reference_left_join(
        left_keys,
        deduped.column("k").to_list(),
        deduped.column("v").to_list(),
    )
    joined = left_join(left, right, "k", "k", seed=seed, drop_right_key=True)
    assert joined.column("v").to_list() == expected


@given(keys, keys)
@settings(max_examples=60)
def test_match_pattern_independent_of_seed(left_keys, right_keys):
    """Which probe rows match never depends on the dedup seed."""
    left = Table({"k": left_keys}, name="l")
    right = Table({"k": right_keys, "v": list(range(len(right_keys)))}, name="r")
    masks = []
    for seed in (0, 7, 42):
        joined = left_join(left, right, "k", "k", seed=seed, drop_right_key=True)
        masks.append(tuple(v is None for v in joined.column("v").to_list()))
    assert masks[0] == masks[1] == masks[2]
