"""Unit tests for the typed, null-aware Column."""

import numpy as np
import pytest

from repro.dataframe import Column, DType
from repro.errors import SchemaError


class TestConstruction:
    def test_infers_int(self):
        col = Column([1, 2, 3])
        assert col.dtype is DType.INT
        assert list(col) == [1, 2, 3]

    def test_infers_float(self):
        col = Column([1.5, 2.0])
        assert col.dtype is DType.FLOAT

    def test_mixed_int_float_infers_float(self):
        col = Column([1, 2.5])
        assert col.dtype is DType.FLOAT

    def test_infers_bool(self):
        col = Column([True, False])
        assert col.dtype is DType.BOOL

    def test_infers_string(self):
        col = Column(["a", "b"])
        assert col.dtype is DType.STRING

    def test_mixed_with_string_infers_string(self):
        col = Column([1, "b"])
        assert col.dtype is DType.STRING
        assert col[0] == "1"

    def test_all_none_infers_float(self):
        col = Column([None, None])
        assert col.dtype is DType.FLOAT
        assert col.null_count() == 2

    def test_none_marks_null(self):
        col = Column([1, None, 3])
        assert col[1] is None
        assert col.null_count() == 1

    def test_nan_marks_null_in_float(self):
        col = Column([1.0, float("nan"), 3.0])
        assert col.null_count() == 1
        assert col[1] is None

    def test_nan_with_ints_stays_int(self):
        col = Column([1, float("nan"), 3])
        assert col.dtype is DType.INT
        assert col[1] is None

    def test_from_numpy_float_array(self):
        col = Column(np.array([1.0, np.nan, 3.0]))
        assert col.dtype is DType.FLOAT
        assert col.null_count() == 1

    def test_from_numpy_int_array(self):
        col = Column(np.array([1, 2, 3], dtype=np.int32))
        assert col.dtype is DType.INT

    def test_from_numpy_bool_array(self):
        col = Column(np.array([True, False]))
        assert col.dtype is DType.BOOL

    def test_explicit_mask(self):
        col = Column([1, 2, 3], mask=np.array([False, True, False]))
        assert col[1] is None
        assert col[0] == 1

    def test_mask_length_mismatch_raises(self):
        with pytest.raises(SchemaError):
            Column([1, 2, 3], mask=np.array([True]))

    def test_explicit_dtype_casts(self):
        col = Column([1, 2], dtype=DType.FLOAT)
        assert col.dtype is DType.FLOAT
        assert col[0] == 1.0

    def test_values_are_read_only(self):
        col = Column([1, 2, 3])
        with pytest.raises(ValueError):
            col.values[0] = 9


class TestAccess:
    def test_len(self):
        assert len(Column([1, 2, 3])) == 3

    def test_iteration_yields_python_values(self):
        values = list(Column([1, 2]))
        assert all(isinstance(v, int) for v in values)

    def test_getitem_non_null(self):
        assert Column(["x", "y"])[1] == "y"

    def test_repr_mentions_dtype(self):
        assert "int" in repr(Column([1]))

    def test_equality_same(self):
        assert Column([1, None, 3]) == Column([1, None, 3])

    def test_equality_different_values(self):
        assert Column([1, 2]) != Column([1, 3])

    def test_equality_different_masks(self):
        assert Column([1, None]) != Column([1, 2])

    def test_equality_different_dtypes(self):
        assert Column([1, 2]) != Column([1.0, 2.0])

    def test_equality_nan_values_under_mask_ignored(self):
        a = Column([1.0, None])
        b = Column(np.array([1.0, 99.0]), mask=np.array([False, True]))
        assert a == b


class TestNullAccounting:
    def test_null_ratio(self):
        assert Column([1, None, None, 4]).null_ratio() == 0.5

    def test_null_ratio_empty(self):
        assert Column([]).null_ratio() == 0.0

    def test_has_nulls(self):
        assert Column([None]).has_nulls()
        assert not Column([1]).has_nulls()


class TestTransforms:
    def test_take(self):
        col = Column([10, None, 30]).take([2, 0])
        assert list(col) == [30, 10]

    def test_take_preserves_nulls(self):
        col = Column([10, None, 30]).take([1, 1])
        assert col.null_count() == 2

    def test_filter(self):
        col = Column([1, 2, 3]).filter(np.array([True, False, True]))
        assert list(col) == [1, 3]

    def test_filter_wrong_length_raises(self):
        with pytest.raises(SchemaError):
            Column([1, 2]).filter(np.array([True]))

    def test_fill_nulls(self):
        col = Column([1, None, 3]).fill_nulls(0)
        assert list(col) == [1, 0, 3]
        assert not col.has_nulls()

    def test_fill_nulls_string(self):
        col = Column(["a", None]).fill_nulls("?")
        assert list(col) == ["a", "?"]

    def test_cast_int_to_float(self):
        col = Column([1, None]).rename_nulls_preserved_cast(DType.FLOAT)
        assert col.dtype is DType.FLOAT
        assert col[1] is None

    def test_cast_to_string(self):
        col = Column([1, None]).rename_nulls_preserved_cast(DType.STRING)
        assert list(col) == ["1", None]

    def test_cast_string_to_float(self):
        col = Column(["1.5", None]).rename_nulls_preserved_cast(DType.FLOAT)
        assert col[0] == 1.5
        assert col[1] is None

    def test_cast_bad_string_raises(self):
        with pytest.raises(SchemaError):
            Column(["abc"]).rename_nulls_preserved_cast(DType.FLOAT)

    def test_cast_same_dtype_returns_self(self):
        col = Column([1])
        assert col.rename_nulls_preserved_cast(DType.INT) is col


class TestAnalytics:
    def test_unique_sorted(self):
        assert Column([3, 1, 2, 1, None]).unique() == [1, 2, 3]

    def test_unique_strings(self):
        assert Column(["b", "a", "b"]).unique() == ["a", "b"]

    def test_value_counts(self):
        assert Column([1, 1, 2, None]).value_counts() == {1: 2, 2: 1}

    def test_mode(self):
        assert Column([1, 2, 2, 3]).mode() == 2

    def test_mode_tie_breaks_deterministically(self):
        assert Column([1, 1, 2, 2]).mode() == Column([2, 2, 1, 1]).mode()

    def test_mode_all_null_is_none(self):
        assert Column([None, None]).mode() is None

    def test_to_float_numeric(self):
        out = Column([1, None, 3]).to_float()
        assert out[0] == 1.0
        assert np.isnan(out[1])

    def test_to_float_string_label_encodes(self):
        out = Column(["b", "a", "b", None]).to_float()
        assert out[0] == 1.0  # 'b' sorts after 'a'
        assert out[1] == 0.0
        assert np.isnan(out[3])

    def test_to_float_bool(self):
        out = Column([True, False]).to_float()
        assert list(out) == [1.0, 0.0]

    def test_non_null_values(self):
        assert list(Column([1, None, 3]).non_null_values()) == [1, 3]

    def test_to_list(self):
        assert Column([1, None]).to_list() == [1, None]


class TestFactories:
    def test_concat(self):
        col = Column.concat([Column([1, 2]), Column([3, None])])
        assert col.to_list() == [1, 2, 3, None]

    def test_concat_dtype_mismatch_raises(self):
        with pytest.raises(SchemaError):
            Column.concat([Column([1]), Column(["a"])])

    def test_concat_empty_raises(self):
        with pytest.raises(SchemaError):
            Column.concat([])

    def test_nulls_factory(self):
        col = Column.nulls(3, DType.STRING)
        assert len(col) == 3
        assert col.null_count() == 3
        assert col.dtype is DType.STRING

    def test_nulls_factory_float_default(self):
        assert Column.nulls(2).dtype is DType.FLOAT
