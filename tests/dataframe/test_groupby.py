"""Unit tests for grouping and aggregation."""

import pytest

from repro.dataframe import Table, aggregate, distinct_count, group_indices, group_sizes, uniqueness
from repro.dataframe.column import Column
from repro.errors import SchemaError


@pytest.fixture
def table():
    return Table(
        {
            "k": ["a", "b", "a", "a", None],
            "v": [1.0, 2.0, 3.0, None, 5.0],
        },
        name="t",
    )


class TestGroupIndices:
    def test_groups(self, table):
        groups = group_indices(table, "k")
        assert sorted(groups) == ["a", "b"]
        assert list(groups["a"]) == [0, 2, 3]

    def test_null_keys_excluded(self, table):
        assert all(4 not in idx for idx in group_indices(table, "k").values())

    def test_sizes(self, table):
        assert group_sizes(table, "k") == {"a": 3, "b": 1}


class TestAggregate:
    def test_mean_skips_nulls(self, table):
        out = aggregate(table, "k", {"v": "mean"})
        row = dict(zip(out.column("k"), out.column("v")))
        assert row["a"] == pytest.approx(2.0)

    def test_count(self, table):
        out = aggregate(table, "k", {"v": "count"})
        row = dict(zip(out.column("k"), out.column("v")))
        assert row == {"a": 3, "b": 1}

    def test_first(self, table):
        out = aggregate(table, "k", {"v": "first"})
        row = dict(zip(out.column("k"), out.column("v")))
        assert row["a"] == 1.0

    def test_min_max_sum(self, table):
        for how, expected in (("min", 1.0), ("max", 3.0), ("sum", 4.0)):
            out = aggregate(table, "k", {"v": how})
            row = dict(zip(out.column("k"), out.column("v")))
            assert row["a"] == pytest.approx(expected), how

    def test_all_null_group_returns_none(self):
        t = Table({"k": ["a"], "v": [None]}, name="t")
        out = aggregate(t, "k", {"v": "mean"})
        assert out.column("v")[0] is None

    def test_unknown_aggregate_raises(self, table):
        with pytest.raises(SchemaError):
            aggregate(table, "k", {"v": "median_absolute"})

    def test_rows_sorted_by_key(self, table):
        out = aggregate(table, "k", {"v": "count"})
        assert out.column("k").to_list() == ["a", "b"]


class TestUniqueness:
    def test_all_distinct_is_one(self):
        assert uniqueness(Column([1, 2, 3])) == 1.0

    def test_repeats_lower_score(self):
        assert uniqueness(Column([1, 1, 1, 2])) == pytest.approx(0.5)

    def test_empty_is_zero(self):
        assert uniqueness(Column([])) == 0.0

    def test_all_null_is_zero(self):
        assert uniqueness(Column([None, None])) == 0.0

    def test_distinct_count(self):
        assert distinct_count(Column([1, 1, 2, None])) == 2
