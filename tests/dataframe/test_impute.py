"""Unit tests for imputation strategies."""

import pytest

from repro.dataframe import (
    Column,
    Table,
    impute_constant,
    impute_mean,
    impute_median,
    impute_most_frequent,
    impute_table,
)
from repro.errors import SchemaError


class TestMostFrequent:
    def test_fills_with_mode(self):
        col = impute_most_frequent(Column([1, 1, 2, None]))
        assert col.to_list() == [1, 1, 2, 1]

    def test_no_nulls_returns_same(self):
        col = Column([1, 2])
        assert impute_most_frequent(col) is col

    def test_all_null_unchanged(self):
        col = Column([None, None])
        assert impute_most_frequent(col).null_count() == 2

    def test_strings(self):
        col = impute_most_frequent(Column(["a", "a", None]))
        assert col.to_list() == ["a", "a", "a"]


class TestMeanMedian:
    def test_mean(self):
        col = impute_mean(Column([1.0, 3.0, None]))
        assert col.to_list() == [1.0, 3.0, 2.0]

    def test_mean_int_rounds(self):
        col = impute_mean(Column([1, 2, None]))
        assert col.dtype.value == "int"
        assert col[2] == 2

    def test_median(self):
        col = impute_median(Column([1.0, 2.0, 100.0, None]))
        assert col[3] == 2.0

    def test_mean_on_string_raises(self):
        with pytest.raises(SchemaError):
            impute_mean(Column(["a", None]))

    def test_median_on_string_raises(self):
        with pytest.raises(SchemaError):
            impute_median(Column(["a", None]))


class TestConstant:
    def test_fills(self):
        assert impute_constant(Column([None, 1]), 9).to_list() == [9, 1]


class TestTableLevel:
    def test_most_frequent_everywhere(self):
        t = Table({"a": [1, None, 1], "b": ["x", None, "x"]}, name="t")
        out = impute_table(t)
        assert out.null_ratio() == 0.0

    def test_mean_falls_back_for_strings(self):
        t = Table({"a": [1.0, None], "b": ["x", None]}, name="t")
        out = impute_table(t, "mean")
        assert out.column("b").to_list() == ["x", "x"]

    def test_unknown_strategy_raises(self):
        with pytest.raises(SchemaError):
            impute_table(Table({"a": [1]}, name="t"), "zeros")

    def test_original_untouched(self):
        t = Table({"a": [1, None]}, name="t")
        impute_table(t)
        assert t.column("a").null_count() == 1
