"""KeyDictionary: interning, normalisation, cross-table code alignment.

The regression focus is the mixed-dtype key collision rule the issue calls
out: ``1``, ``1.0`` and ``np.int64(1)`` must land on the same code (they
join-match and share one dedup-representative digest) while ``"1"`` stays
a distinct, never-matching key.  That rule used to live as ``_key_of``
inside ``join.py``; it is now centralised in
:func:`repro.dataframe.encoding.normalize_key` and everything here pins
the centralised behaviour.
"""

import numpy as np
import pytest

from repro.dataframe import CODE_NULL, Column, DType, KeyDictionary, normalize_key
from repro.dataframe.join import _key_of


def _col(values, dtype, mask=None):
    if dtype is DType.STRING:
        arr = np.asarray(values, dtype=object)
    else:
        arr = np.asarray(values)
    if mask is None:
        mask = np.zeros(len(arr), dtype=bool)
    return Column(arr, dtype=dtype, mask=np.asarray(mask, dtype=bool))


class TestNormalizeKey:
    def test_int_float_collapse(self):
        assert normalize_key(1) == normalize_key(1.0) == normalize_key(np.int64(1))
        assert normalize_key(np.float64(1.0)) == 1
        assert type(normalize_key(1.0)) is int

    def test_string_never_coerced(self):
        assert normalize_key("1") == "1"
        assert normalize_key("1") != normalize_key(1)
        assert normalize_key(np.str_("1")) == "1"

    def test_bool_preserved(self):
        assert normalize_key(True) is True
        assert normalize_key(np.bool_(False)) is False
        # bools hash like ints but must digest as 'True'/'False'.
        assert repr(normalize_key(True)) == "True"

    def test_non_integral_float_kept(self):
        assert normalize_key(1.5) == 1.5
        assert isinstance(normalize_key(1.5), float)

    def test_none_passthrough(self):
        assert normalize_key(None) is None

    def test_join_module_delegates(self):
        """The legacy ``_key_of`` alias is literally the central function."""
        assert _key_of is normalize_key


class TestFromColumn:
    def test_codes_are_sorted_ranks(self):
        d = KeyDictionary.from_column(_col([30, 10, 20, 10], DType.INT))
        assert d is not None
        assert d.n_keys == 3
        assert d.codes.tolist() == [2, 0, 1, 0]
        assert d.codes.dtype == np.int32

    def test_null_sentinel(self):
        d = KeyDictionary.from_column(
            _col([5, 0, 7], DType.INT, mask=[False, True, False])
        )
        assert d.codes.tolist() == [0, CODE_NULL, 1]

    def test_empty_column(self):
        d = KeyDictionary.from_column(_col([], DType.INT))
        assert d is not None
        assert d.n_keys == 0
        assert len(d.codes) == 0

    def test_unmasked_nan_falls_back(self):
        """Unmasked NaN keys have no dense-code analogue: each scalar-path
        NaN row is its own never-matching group."""
        col = _col([1.0, np.nan, 2.0], DType.FLOAT)
        assert KeyDictionary.from_column(col) is None

    def test_masked_nan_is_fine(self):
        col = _col([1.0, np.nan, 2.0], DType.FLOAT, mask=[False, True, False])
        d = KeyDictionary.from_column(col)
        assert d is not None
        assert d.codes.tolist() == [0, CODE_NULL, 1]

    def test_integral_float_keys_normalise_to_int(self):
        d = KeyDictionary.from_column(_col([2.0, 1.0], DType.FLOAT))
        assert d.keys() == [1, 2]
        assert all(type(k) is int for k in d.keys())

    def test_bool_keys_digest_as_bool(self):
        d = KeyDictionary.from_column(_col([True, False, True], DType.BOOL))
        assert d.keys() == [False, True]
        assert all(isinstance(k, bool) for k in d.keys())

    def test_string_keys(self):
        d = KeyDictionary.from_column(_col(["b", "a", "b"], DType.STRING))
        assert d.keys() == ["a", "b"]
        assert d.codes.tolist() == [1, 0, 1]

    def test_nbytes_positive(self):
        d = KeyDictionary.from_column(_col(["aa", "bb"], DType.STRING))
        assert d.nbytes > 0


class TestEncodeColumn:
    def test_same_space_roundtrip(self):
        d = KeyDictionary.from_column(_col([10, 20, 30], DType.INT))
        codes = d.encode_column(_col([20, 99, 10], DType.INT))
        assert codes.tolist() == [1, CODE_NULL, 0]

    def test_probe_nulls_are_sentinel(self):
        d = KeyDictionary.from_column(_col([10, 20], DType.INT))
        codes = d.encode_column(_col([10, 0], DType.INT, mask=[False, True]))
        assert codes.tolist() == [0, CODE_NULL]

    def test_int_probe_against_float_dictionary(self):
        """The 1 vs 1.0 alignment across tables — the headline regression."""
        d = KeyDictionary.from_column(_col([1.0, 2.0, 3.5], DType.FLOAT))
        codes = d.encode_column(_col([1, 2, 3], DType.INT))
        assert codes.tolist() == [0, 1, CODE_NULL]

    def test_float_probe_against_int_dictionary(self):
        d = KeyDictionary.from_column(_col([1, 2, 3], DType.INT))
        codes = d.encode_column(_col([1.0, 2.5, 3.0], DType.FLOAT))
        assert codes.tolist() == [0, CODE_NULL, 2]

    def test_string_probe_never_matches_numeric(self):
        d = KeyDictionary.from_column(_col([1, 2], DType.INT))
        codes = d.encode_column(_col(["1", "2"], DType.STRING))
        assert codes.tolist() == [CODE_NULL, CODE_NULL]

    def test_numeric_probe_never_matches_string(self):
        d = KeyDictionary.from_column(_col(["1", "2"], DType.STRING))
        codes = d.encode_column(_col([1, 2], DType.INT))
        assert codes.tolist() == [CODE_NULL, CODE_NULL]

    def test_bool_probe_matches_int_dictionary(self):
        d = KeyDictionary.from_column(_col([0, 1, 2], DType.INT))
        codes = d.encode_column(_col([True, False], DType.BOOL))
        assert codes.tolist() == [1, 0]

    def test_nan_probe_values_never_match(self):
        d = KeyDictionary.from_column(_col([1, 2], DType.INT))
        codes = d.encode_column(_col([np.nan, 1.0], DType.FLOAT))
        assert codes.tolist() == [CODE_NULL, 0]

    def test_huge_int_beyond_exact_float_range(self):
        """|v| > 2**53 cannot bridge through float64; the scalar fallback
        must still match exactly and reject off-by-one neighbours."""
        big = 2**60 + 1
        d = KeyDictionary.from_column(_col([1.0, 2.0], DType.FLOAT))
        codes = d.encode_column(_col([big, 1], DType.INT))
        assert codes.tolist() == [CODE_NULL, 0]
        d_int = KeyDictionary.from_column(_col([big, 7], DType.INT))
        probe = d_int.encode_column(_col([big, big + 2, 7], DType.INT))
        # Codes are ranks in the sorted universe: 7 < big.
        assert probe.tolist() == [1, CODE_NULL, 0]

    def test_empty_dictionary_rejects_everything(self):
        d = KeyDictionary.from_column(_col([], DType.INT))
        codes = d.encode_column(_col([1, 2], DType.INT))
        assert codes.tolist() == [CODE_NULL, CODE_NULL]

    def test_scalar_lookup_matches_vectorised(self):
        d = KeyDictionary.from_column(_col([3, 1, 2], DType.INT))
        lookup = d.scalar_lookup()
        probe = _col([1, 2, 3, 4], DType.INT)
        vec = d.encode_column(probe)
        assert [lookup.get(normalize_key(v), CODE_NULL) for v in probe] == vec.tolist()


class TestMixedDtypeRegression:
    """1, 1.0 and "1" across build/probe tables — the satellite regression."""

    @pytest.mark.parametrize(
        "build_dtype,build_values",
        [(DType.INT, [1, 2]), (DType.FLOAT, [1.0, 2.0])],
    )
    def test_numeric_build_sides_agree(self, build_dtype, build_values):
        d = KeyDictionary.from_column(_col(build_values, build_dtype))
        int_probe = d.encode_column(_col([1], DType.INT))
        float_probe = d.encode_column(_col([1.0], DType.FLOAT))
        str_probe = d.encode_column(_col(["1"], DType.STRING))
        assert int_probe.tolist() == float_probe.tolist() == [0]
        assert str_probe.tolist() == [CODE_NULL]

    def test_string_build_side_only_matches_strings(self):
        d = KeyDictionary.from_column(_col(["1", "2"], DType.STRING))
        assert d.encode_column(_col(["1"], DType.STRING)).tolist() == [0]
        assert d.encode_column(_col([1], DType.INT)).tolist() == [CODE_NULL]
        assert d.encode_column(_col([1.0], DType.FLOAT)).tolist() == [CODE_NULL]
