"""Unit tests for data-quality profiling."""

import pytest

from repro.dataframe import (
    Column,
    Table,
    column_quality,
    quality_report,
    verify_key_constraint,
)
from repro.errors import SchemaError


class TestColumnQuality:
    def test_complete_unique_key(self):
        q = column_quality(Column(list(range(100))), "id")
        assert q.completeness == 1.0
        assert q.uniqueness == 1.0
        assert q.is_key_quality

    def test_nulls_lower_completeness(self):
        q = column_quality(Column([1, None, 3, None]), "x")
        assert q.completeness == 0.5
        assert not q.is_key_quality

    def test_constant_column(self):
        q = column_quality(Column([7, 7, 7]), "c")
        assert q.is_constant
        assert q.constancy == 1.0

    def test_constancy_of_mode(self):
        q = column_quality(Column([1, 1, 1, 2]), "c")
        assert q.constancy == 0.75

    def test_all_null(self):
        q = column_quality(Column([None, None]), "c")
        assert q.completeness == 0.0
        assert q.n_distinct == 0
        assert q.constancy == 0.0


class TestTableQuality:
    def make(self):
        return Table(
            {
                "id": list(range(10)),
                "const": [3] * 10,
                "holey": [None] * 5 + list(range(5)),
            },
            name="t",
        )

    def test_report_covers_all_columns(self):
        report = quality_report(self.make())
        assert [c.name for c in report.columns] == ["id", "const", "holey"]
        assert report.n_rows == 10

    def test_table_completeness(self):
        report = quality_report(self.make())
        assert report.completeness == pytest.approx((1.0 + 1.0 + 0.5) / 3)

    def test_constant_columns_flagged(self):
        assert quality_report(self.make()).constant_columns == ("const",)

    def test_key_candidates(self):
        assert quality_report(self.make()).key_candidates == ("id",)

    def test_column_lookup(self):
        report = quality_report(self.make())
        assert report.column("holey").completeness == 0.5
        with pytest.raises(SchemaError):
            report.column("zzz")

    def test_rows_for_reporting(self):
        rows = quality_report(self.make()).rows()
        assert len(rows) == 3
        assert set(rows[0]) == {
            "column",
            "completeness",
            "uniqueness",
            "constancy",
            "distinct",
        }


class TestVerifyKeyConstraint:
    def test_perfect_constraint(self):
        parent = Table({"fk": [1, 2, 3]}, name="p")
        child = Table({"pk": [1, 2, 3, 4]}, name="c")
        report = verify_key_constraint(parent, "fk", child, "pk")
        assert report["child_key_unique"]
        assert report["coverage"] == 1.0
        assert report["dangling"] == 0

    def test_dangling_references(self):
        parent = Table({"fk": [1, 2, 99]}, name="p")
        child = Table({"pk": [1, 2]}, name="c")
        report = verify_key_constraint(parent, "fk", child, "pk")
        assert report["dangling"] == 1
        assert report["coverage"] == pytest.approx(2 / 3)

    def test_duplicate_child_keys_flagged(self):
        parent = Table({"fk": [1]}, name="p")
        child = Table({"pk": [1, 1]}, name="c")
        assert not verify_key_constraint(parent, "fk", child, "pk")["child_key_unique"]

    def test_generated_lake_constraints_verify(self):
        from repro.datasets import build_dataset

        bundle = build_dataset("credit")
        tables = {t.name: t for t in bundle.tables}
        for constraint in bundle.constraints:
            report = verify_key_constraint(
                tables[constraint.table_a],
                constraint.column_a,
                tables[constraint.table_b],
                constraint.column_b,
            )
            assert report["child_key_unique"], constraint
            # Satellites are subsampled, so coverage is high but can dip
            # below 1; it must never be catastrophically low.
            assert report["coverage"] > 0.5, constraint
