"""Unit tests for the immutable Table."""

import numpy as np
import pytest

from repro.dataframe import Column, DType, Table
from repro.errors import SchemaError


@pytest.fixture
def table():
    return Table(
        {
            "id": [1, 2, 3, 4],
            "x": [1.0, None, 3.0, 4.0],
            "name": ["a", "b", None, "d"],
        },
        name="demo",
    )


class TestConstruction:
    def test_shape(self, table):
        assert table.shape == (4, 3)
        assert table.n_rows == 4
        assert table.n_cols == 3

    def test_column_names_ordered(self, table):
        assert table.column_names == ["id", "x", "name"]

    def test_wraps_raw_sequences(self):
        t = Table({"a": [1, 2]})
        assert isinstance(t.column("a"), Column)

    def test_length_mismatch_raises(self):
        with pytest.raises(SchemaError):
            Table({"a": [1, 2], "b": [1]})

    def test_empty_name_column_raises(self):
        with pytest.raises(SchemaError):
            Table({"": [1]})

    def test_from_rows(self):
        t = Table.from_rows(["a", "b"], [(1, "x"), (2, "y")])
        assert t.column("b").to_list() == ["x", "y"]

    def test_from_rows_width_mismatch_raises(self):
        with pytest.raises(SchemaError):
            Table.from_rows(["a", "b"], [(1,)])

    def test_empty_factory(self):
        t = Table.empty(["a", "b"])
        assert t.shape == (0, 2)

    def test_zero_row_table(self):
        t = Table({"a": []})
        assert t.n_rows == 0


class TestAccess:
    def test_contains(self, table):
        assert "id" in table
        assert "zzz" not in table

    def test_column_lookup_error_lists_available(self, table):
        with pytest.raises(SchemaError, match="available"):
            table.column("zzz")

    def test_getitem(self, table):
        assert table["id"].to_list() == [1, 2, 3, 4]

    def test_row(self, table):
        assert table.row(1) == {"id": 2, "x": None, "name": "b"}

    def test_to_dict(self, table):
        assert table.to_dict()["name"] == ["a", "b", None, "d"]

    def test_dtypes(self, table):
        assert table.dtypes()["name"] is DType.STRING

    def test_equality(self, table):
        clone = Table(table.to_dict(), name="other")
        assert table == clone  # equality ignores the table name

    def test_inequality_on_columns(self, table):
        assert table != table.drop(["x"])


class TestRelationalOps:
    def test_select_order(self, table):
        t = table.select(["name", "id"])
        assert t.column_names == ["name", "id"]

    def test_drop(self, table):
        assert table.drop(["x"]).column_names == ["id", "name"]

    def test_drop_unknown_raises(self, table):
        with pytest.raises(SchemaError):
            table.drop(["zzz"])

    def test_rename(self, table):
        t = table.rename({"id": "key"})
        assert "key" in t and "id" not in t

    def test_rename_unknown_raises(self, table):
        with pytest.raises(SchemaError):
            table.rename({"zzz": "a"})

    def test_rename_collision_raises(self, table):
        with pytest.raises(SchemaError):
            table.rename({"id": "x"})

    def test_with_column_adds(self, table):
        t = table.with_column("y", Column([0, 0, 0, 0]))
        assert "y" in t

    def test_with_column_replaces(self, table):
        t = table.with_column("id", Column([9, 9, 9, 9]))
        assert t.column("id").to_list() == [9, 9, 9, 9]

    def test_with_column_wrong_length_raises(self, table):
        with pytest.raises(SchemaError):
            table.with_column("y", Column([1]))

    def test_with_name(self, table):
        assert table.with_name("zzz").name == "zzz"

    def test_prefixed(self, table):
        t = table.prefixed("demo", exclude=["id"])
        assert t.column_names == ["id", "demo.x", "demo.name"]

    def test_filter(self, table):
        t = table.filter(np.array([True, False, True, False]))
        assert t.column("id").to_list() == [1, 3]

    def test_take(self, table):
        t = table.take([3, 0])
        assert t.column("id").to_list() == [4, 1]

    def test_head(self, table):
        assert table.head(2).n_rows == 2

    def test_head_beyond_length(self, table):
        assert table.head(10).n_rows == 4

    def test_concat_rows(self, table):
        t = table.concat_rows(table)
        assert t.n_rows == 8

    def test_concat_rows_schema_mismatch_raises(self, table):
        with pytest.raises(SchemaError):
            table.concat_rows(table.drop(["x"]))


class TestAnalytics:
    def test_null_ratio_all_columns(self, table):
        # 2 nulls over 12 cells
        assert table.null_ratio() == pytest.approx(2 / 12)

    def test_null_ratio_subset(self, table):
        assert table.null_ratio(["x"]) == pytest.approx(0.25)

    def test_null_ratio_empty_selection(self, table):
        assert table.null_ratio([]) == 0.0

    def test_numeric_matrix_shape(self, table):
        m = table.numeric_matrix()
        assert m.shape == (4, 3)

    def test_numeric_matrix_nan_for_nulls(self, table):
        m = table.numeric_matrix(["x"])
        assert np.isnan(m[1, 0])

    def test_numeric_matrix_encodes_strings(self, table):
        m = table.numeric_matrix(["name"])
        assert m[0, 0] == 0.0  # 'a'
        assert np.isnan(m[2, 0])

    def test_numeric_matrix_empty_columns(self, table):
        assert table.numeric_matrix([]).shape == (4, 0)


class TestImmutability:
    def test_select_does_not_alias(self, table):
        selected = table.select(["id"])
        assert selected is not table
        assert table.n_cols == 3

    def test_operations_preserve_original(self, table):
        table.filter(np.array([True, True, False, False]))
        table.rename({"id": "key"})
        assert table.column_names == ["id", "x", "name"]
