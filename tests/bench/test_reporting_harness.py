"""Unit tests for the bench reporting and the experiment harness."""

import pytest

from repro.bench import (
    BenchProfile,
    average_by_method,
    build_setting,
    compare_methods,
    format_series,
    format_table,
    headline_summary,
    summarise,
    table2_overview,
)
from repro.core import AutoFeatConfig
from repro.datasets import build_dataset


class TestFormatTable:
    def test_renders_columns(self):
        text = format_table([{"a": 1, "b": "x"}, {"a": 22, "b": "yy"}])
        lines = text.splitlines()
        assert lines[0].split() == ["a", "b"]
        assert "22" in lines[3]

    def test_title(self):
        assert format_table([{"a": 1}], title="T").startswith("T\n")

    def test_empty(self):
        assert "(no rows)" in format_table([])

    def test_float_formatting(self):
        assert "0.1235" in format_table([{"v": 0.123456}])

    def test_column_selection(self):
        text = format_table([{"a": 1, "b": 2}], columns=["b"])
        assert "a" not in text.splitlines()[0]

    def test_missing_cell_blank(self):
        text = format_table([{"a": 1}, {"b": 2}], columns=["a", "b"])
        assert text  # renders without raising

    def test_empty_with_explicit_columns_renders_header(self):
        text = format_table([], columns=["a", "bb"])
        lines = text.splitlines()
        assert lines[0].split() == ["a", "bb"]
        assert lines[-1] == "(no rows)"

    def test_empty_with_title(self):
        assert format_table([], title="T") == "T\n(no rows)"

    def test_heterogeneous_rows_union_columns(self):
        # Header is the union of keys in first-seen order; missing cells
        # render empty instead of raising.
        text = format_table([{"a": 1}, {"b": 2, "a": 3}, {"c": 4}])
        lines = text.splitlines()
        assert lines[0].split() == ["a", "b", "c"]
        assert lines[4].split() == ["4"]  # row {"c": 4}: a and b blank

    def test_extra_keys_outside_columns_dropped(self):
        text = format_table([{"a": 1, "noise": "zz"}], columns=["a"])
        assert "zz" not in text
        assert "noise" not in text

    def test_non_numeric_cells_stringified(self):
        rows = [{"v": None, "w": [1, 2], "x": True, "y": "s"}]
        text = format_table(rows)
        body = text.splitlines()[2]
        assert "None" in body
        assert "[1, 2]" in body
        assert "True" in body

    def test_wide_cell_sets_column_width(self):
        text = format_table([{"a": "xxxxxxxxxx"}, {"a": 1}])
        header, rule = text.splitlines()[:2]
        assert len(rule) == 10
        assert header.startswith("a")


class TestSeriesAndSummaries:
    def test_series(self):
        text = format_series("k", [1, 2], {"acc": [0.5, 0.6]})
        assert "acc" in text
        assert "0.6000" in text

    def test_summarise(self):
        out = summarise([1.0, 2.0, 3.0])
        assert out == {"mean": 2.0, "min": 1.0, "max": 3.0}

    def test_summarise_empty(self):
        assert summarise([]) == {"mean": 0.0, "min": 0.0, "max": 0.0}


class TestProfile:
    def test_quick_profile(self):
        profile = BenchProfile.quick()
        assert len(profile.datasets) == 3
        assert profile.methods[-1] == "AutoFeat"

    def test_full_profile_covers_table2(self):
        assert len(BenchProfile.full().datasets) == 8
        assert len(BenchProfile.full().models) == 4

    def test_env_toggle(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_FULL", "1")
        assert len(BenchProfile.from_env().datasets) == 8
        monkeypatch.delenv("REPRO_BENCH_FULL")
        assert len(BenchProfile.from_env().datasets) == 3


class TestHarness:
    def test_build_setting_variants(self):
        bundle = build_dataset("credit")
        assert build_setting(bundle, "benchmark").n_relationships == 5
        assert build_setting(bundle, "datalake").n_relationships > 0
        with pytest.raises(ValueError):
            build_setting(bundle, "prod")

    def test_compare_methods_rows(self):
        profile = BenchProfile(
            datasets=("credit",),
            models=("lightgbm",),
            methods=("BASE", "AutoFeat"),
            config=AutoFeatConfig(sample_size=300, top_k=2),
            seed=1,
        )
        rows = compare_methods(profile, "benchmark")
        assert len(rows) == 2
        assert {r["method"] for r in rows} == {"BASE", "AutoFeat"}
        assert all(r["status"] == "ok" for r in rows)

    def test_datalake_skips_joinall(self):
        profile = BenchProfile(
            datasets=("credit",),
            models=("lightgbm",),
            methods=("BASE", "JoinAll", "JoinAll+F"),
            config=AutoFeatConfig(sample_size=300),
            seed=1,
        )
        rows = compare_methods(profile, "datalake")
        assert {r["method"] for r in rows} == {"BASE"}

    def test_average_by_method(self):
        rows = [
            {"method": "A", "accuracy": 0.5},
            {"method": "A", "accuracy": 0.7},
            {"method": "B", "accuracy": None},
        ]
        out = {r["method"]: r for r in average_by_method(rows)}
        assert out["A"]["mean_accuracy"] == pytest.approx(0.6)
        assert "B" not in out

    def test_headline_summary_speedups(self):
        rows = [
            {"method": "AutoFeat", "accuracy": 0.9, "fs_seconds": 0.1},
            {"method": "ARDA", "accuracy": 0.8, "fs_seconds": 1.0},
        ]
        out = {r["method"]: r for r in headline_summary(rows)}
        assert out["ARDA"]["autofeat_speedup"] == pytest.approx(10.0)
        assert out["ARDA"]["autofeat_acc_delta"] == pytest.approx(0.1)


class TestTable2:
    def test_eight_rows_with_paper_shape(self):
        rows = table2_overview()
        assert len(rows) == 8
        by_name = {r["dataset"]: r for r in rows}
        assert by_name["credit"]["paper_rows"] == 1001
        assert by_name["bioresponse"]["joinable"] == 40
