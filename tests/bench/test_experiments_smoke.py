"""Smoke tests for the figure-level experiment functions (tiny scales).

The full experiments live in ``benchmarks/``; these assert the row
contracts on the smallest possible inputs so harness regressions surface
in the fast suite.
"""

import pytest

from repro.bench import (
    fig3a_relevance_comparison,
    fig3b_redundancy_comparison,
    fig8_kappa_sensitivity,
    fig9_ablation,
    joinall_explosion,
)


class TestFig3Functions:
    def test_relevance_rows(self):
        rows = fig3a_relevance_comparison(datasets=("credit",))
        assert {r["metric"] for r in rows} == {
            "information_gain",
            "symmetrical_uncertainty",
            "pearson",
            "spearman",
            "relief",
        }
        assert all(0.0 <= r["mean_accuracy"] <= 1.0 for r in rows)
        assert all(r["mean_selection_seconds"] >= 0.0 for r in rows)

    def test_redundancy_rows(self):
        rows = fig3b_redundancy_comparison(datasets=("credit",), kappa=5)
        assert {r["method"] for r in rows} == {"mifs", "mrmr", "cife", "jmi", "cmim"}


class TestSweepFunctions:
    def test_kappa_sweep_rows(self):
        rows = fig8_kappa_sensitivity(datasets=("credit",), kappas=(2, 15))
        assert [r["kappa"] for r in rows] == [2, 15]
        assert all(r["mean_fs_seconds"] > 0 for r in rows)

    def test_ablation_rows(self):
        rows = fig9_ablation(datasets=("credit",))
        variants = {r["variant"] for r in rows}
        assert "spearman-mrmr" in variants
        assert "mrmr-only" in variants
        assert len(rows) == 6


class TestJoinAllExplosion:
    def test_row_contract(self):
        rows = joinall_explosion(("credit",))
        assert len(rows) == 2  # benchmark + datalake
        assert all(r["joinall_orderings"] >= 1 for r in rows)


class TestExtensionExperiments:
    def test_streaming_selector_rows(self):
        from repro.bench import streaming_selector_comparison

        rows = streaming_selector_comparison(datasets=("credit",))
        strategies = {r["strategy"] for r in rows}
        assert strategies == {
            "two-stage (AutoFeat)",
            "alpha-investing",
            "fast-osfs",
        }
        assert all(r["n_selected"] >= 1 for r in rows)
        assert all(0.0 <= r["accuracy"] <= 1.0 for r in rows)
