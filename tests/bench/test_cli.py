"""Unit tests for the ``python -m repro.bench`` experiment CLI."""

import pytest

from repro.bench.__main__ import EXPERIMENTS, main


class TestCli:
    def test_list_runs(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table2" in out
        assert "fig9" in out

    def test_every_registered_experiment_has_metadata(self):
        for key, (title, runner) in EXPERIMENTS.items():
            assert title
            assert callable(runner)

    def test_table2_experiment(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "bioresponse" in out

    def test_eq3_experiment(self, capsys):
        assert main(["eq3"]) == 0
        assert "joinall_orderings" in capsys.readouterr().out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["fig99"])
        assert excinfo.value.code == 2
