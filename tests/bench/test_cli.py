"""Unit tests for the ``python -m repro.bench`` experiment CLI."""

import pytest

from repro.bench.__main__ import EXPERIMENTS, main


class TestCli:
    def test_list_runs(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table2" in out
        assert "fig9" in out

    def test_every_registered_experiment_has_metadata(self):
        for key, (title, runner) in EXPERIMENTS.items():
            assert title
            assert callable(runner)

    def test_table2_experiment(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "bioresponse" in out

    def test_eq3_experiment(self, capsys):
        assert main(["eq3"]) == 0
        assert "joinall_orderings" in capsys.readouterr().out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["fig99"])
        assert excinfo.value.code == 2

    def test_no_argument_lists_instead_of_erroring(self, capsys):
        assert main([]) == 0
        out = capsys.readouterr().out
        assert "available experiments" in out
        assert "table2" in out

    def test_seed_flag_replaces_profile_seed(self, monkeypatch, capsys):
        seen = {}

        def probe(profile):
            seen["seed"] = profile.seed
            return [{"ok": 1}]

        monkeypatch.setitem(EXPERIMENTS, "table2", ("probe", probe))
        assert main(["table2", "--seed", "7"]) == 0
        assert seen["seed"] == 7
        assert main(["table2"]) == 0
        assert seen["seed"] == 1  # profile default when the flag is absent

    def test_out_flag_writes_table(self, tmp_path, capsys):
        out_path = tmp_path / "nested" / "eq3.txt"
        assert main(["eq3", "--out", str(out_path)]) == 0
        printed = capsys.readouterr().out
        assert "joinall_orderings" in out_path.read_text()
        assert f"table -> {out_path}" in printed
